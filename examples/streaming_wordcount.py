#!/usr/bin/env python
"""Online word counting over an unbounded stream (§7's online processing).

Breaking the barrier is what makes MapReduce usable for stream
processing: reducers fold records as they arrive, so the job has a
meaningful *current answer* at every instant.  This example feeds a
document stream in micro-batches, takes a live snapshot after each batch
(watching the counts of two words converge), and finally closes the
stream — verifying the end result equals a batch run.

It also demonstrates the incremental-computation corollary the paper
flags as future work (§8, DryadInc): yesterday's output plus a delta
job's output, merged with the job's merge function, equals a full
recompute.

Run:  python examples/streaming_wordcount.py
"""

from __future__ import annotations

from repro.apps import wordcount
from repro.core import ExecutionMode
from repro.core.memo import merge_job_outputs
from repro.engine import LocalEngine
from repro.engine.streaming import StreamingEngine
from repro.workloads import generate_documents


def main() -> None:
    corpus = generate_documents(
        num_docs=60, words_per_doc=80, vocab_size=400, seed=13
    )

    # --- online half: micro-batches with live snapshots ------------------
    stream = StreamingEngine(
        wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=3)
    )
    watched = ("w000000", "w000001")  # the two hottest Zipf words
    print(f"{'batch':>5s}  " + "  ".join(f"{w:>8s}" for w in watched))
    batch_size = 10
    for batch_no, start in enumerate(range(0, len(corpus), batch_size)):
        stream.push(corpus[start : start + batch_size])
        snapshot = stream.snapshot()
        counts = "  ".join(f"{snapshot.get(w, 0):8d}" for w in watched)
        print(f"{batch_no:5d}  {counts}")
    final = stream.close()
    assert final.output_as_dict() == wordcount.reference_output(corpus)
    print("stream result == batch result ✔")

    # --- incremental half: merge yesterday's output with today's delta ---
    yesterday, today = corpus[:40], corpus[40:]
    engine = LocalEngine()
    job = wordcount.make_job(ExecutionMode.BARRIERLESS)
    output_yesterday = engine.run(job, yesterday, num_maps=4).output_as_dict()
    output_delta = engine.run(job, today, num_maps=2).output_as_dict()
    merged = merge_job_outputs(output_yesterday, output_delta, wordcount.merge_counts)
    assert merged == wordcount.reference_output(corpus)
    print(
        f"incremental update: {len(today)} new docs folded into "
        f"{len(output_yesterday)} existing aggregates without recomputing "
        f"the original {len(yesterday)} ✔"
    )


if __name__ == "__main__":
    main()
