#!/usr/bin/env python
"""Pairwise document similarity over a synthetic corpus (paper ref [12]).

The Elsayed–Lin–Oard two-job algorithm on this framework: an inverted-
index job feeds a pair-generation job, and the resulting dot products
identify the most similar document pairs.  Both jobs run barrier-less;
the result is verified against a direct computation.

Run:  python examples/document_similarity.py
"""

from __future__ import annotations

from repro.apps.similarity import pairwise_similarity, reference_similarity
from repro.core import ExecutionMode
from repro.engine import LocalEngine
from repro.workloads import generate_documents


def main() -> None:
    # Zipf text gives documents real overlap in the hot words.
    docs = generate_documents(
        num_docs=40, words_per_doc=60, vocab_size=120, seed=17
    )
    similarities = pairwise_similarity(
        docs, LocalEngine(), ExecutionMode.BARRIERLESS, num_reducers=4
    )
    assert similarities == reference_similarity(docs)

    pairs = len(docs) * (len(docs) - 1) // 2
    print(
        f"{len(docs)} documents → {pairs} candidate pairs, "
        f"{len(similarities)} with non-zero similarity\n"
    )
    top = sorted(similarities.items(), key=lambda item: -item[1])[:8]
    print(f"{'pair':>22s}  {'dot product':>11s}")
    for (doc_a, doc_b), score in top:
        print(f"{doc_a} ~ {doc_b:>10s}  {score:11d}")
    print(
        "\nBoth jobs are Aggregation-class reduces, so the barrier-less "
        "conversion is the standard running-fold scaffold; output verified "
        "equal to the direct TF-vector dot products."
    )


if __name__ == "__main__":
    main()
