#!/usr/bin/env python
"""Black-Scholes option pricing by single-reducer MapReduce (§4.7).

Monte-Carlo pricing of a European call: mappers simulate discounted
payoffs (each emitting the value and its square), a single reducer keeps
running sums and produces the mean and standard deviation with the
paper's O(1)-memory identity

    sigma = sqrt(mean(x^2) - mean(x)^2)

The Monte-Carlo estimate is checked against the closed-form
Black-Scholes price.

Run:  python examples/blackscholes_pricing.py
"""

from __future__ import annotations

import math

from repro.apps import blackscholes
from repro.core import ExecutionMode
from repro.engine import MultiprocessEngine
from repro.workloads import (
    OptionParams,
    black_scholes_closed_form,
    generate_mc_batches,
)


def main() -> None:
    params = OptionParams(
        spot=100.0, strike=105.0, rate=0.05, volatility=0.25, maturity=0.5
    )
    batches = generate_mc_batches(
        num_mappers=8, iterations_per_mapper=25_000, params=params, seed=2026
    )

    job = blackscholes.make_job(ExecutionMode.BARRIERLESS)
    result = MultiprocessEngine(processes=2).run(job, batches, num_maps=8)
    out = result.output_as_dict()

    analytic = black_scholes_closed_form(params)
    standard_error = out["stddev"] / math.sqrt(out["count"])

    print("European call:", params)
    print(f"  closed-form price     : {analytic:9.4f}")
    print(f"  Monte-Carlo estimate  : {out['mean']:9.4f}")
    print(f"  payoff std deviation  : {out['stddev']:9.4f}")
    print(f"  simulated paths       : {out['count']:,}")
    print(f"  standard error        : {standard_error:9.4f}")
    deviation = abs(out["mean"] - analytic) / standard_error
    print(f"  |MC - analytic| / SE  : {deviation:9.2f}  (should be small)")
    assert deviation < 4.0, "Monte Carlo drifted from the analytic price"
    print(
        "\nThe reducer held three floats the whole time — the O(1) "
        "partial-result footprint that makes Black-Scholes the paper's "
        "best-case barrier-less application (87% improvement)."
    )


if __name__ == "__main__":
    main()
