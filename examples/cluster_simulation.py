#!/usr/bin/env python
"""Reproduce the paper's headline cluster results on the simulated testbed.

Simulates the §6 Cloud Computing Testbed (15 slaves, 4 map + 4 reduce
slots each, GigE, 64 MB chunks) and re-creates:

- Figure 4: the WordCount stage-concurrency timeline with and without
  the barrier, including the mapper-slack annotation;
- a Figure 6(b)-style size sweep with per-size improvement;
- Figure 5: the reducer heap trace — OOM in-memory vs spill-and-merge.

Run:  python examples/cluster_simulation.py
"""

from __future__ import annotations

from repro.analysis import (
    ascii_heap_plot,
    ascii_timeline,
    heap_trace,
    render_sweep,
    size_sweep,
    stage_summary,
    timeline,
)
from repro.core import ExecutionMode
from repro.sim import (
    HadoopSimulator,
    MemoryTechnique,
    paper_testbed,
    wordcount_profile,
)


def main() -> None:
    cluster = paper_testbed()
    sim = HadoopSimulator(cluster)
    profile = wordcount_profile(3.0)  # Figure 4's 3 GB Wikipedia run

    print("=" * 72)
    print("Figure 4 — WordCount (3 GB), WITH barrier")
    print("=" * 72)
    barrier = sim.run(profile, 40, ExecutionMode.BARRIER)
    print(ascii_timeline(timeline(barrier)))
    summary = stage_summary(barrier)
    print(
        f"\n  maps done: first {summary['first_map_done']:.0f}s / "
        f"last {summary['last_map_done']:.0f}s;  "
        f"mapper slack {summary['mapper_slack']:.1f}s;  "
        f"job done {summary['job_done']:.0f}s"
    )

    print()
    print("=" * 72)
    print("Figure 4 — WordCount (3 GB), WITHOUT barrier")
    print("=" * 72)
    barrierless = sim.run(profile, 40, ExecutionMode.BARRIERLESS)
    print(ascii_timeline(timeline(barrierless)))
    bl_summary = stage_summary(barrierless)
    tail = bl_summary["job_done"] - bl_summary["last_map_done"]
    improvement = 100.0 * (
        barrier.completion_time - barrierless.completion_time
    ) / barrier.completion_time
    print(
        f"\n  job done {bl_summary['job_done']:.0f}s — only {tail:.1f}s "
        f"after the final map task ({improvement:.0f}% faster than the "
        f"barrier version; paper reports 30% for this scenario)"
    )

    print()
    print("=" * 72)
    print("Figure 6(b) — WordCount completion time vs input size")
    print("=" * 72)
    print(render_sweep("", "Input (GB)", size_sweep(wordcount_profile)))

    print()
    print("=" * 72)
    print("Figure 5 — reducer heap, WordCount 16 GB, 10 reducers")
    print("=" * 72)
    oom = sim.run(
        wordcount_profile(16.0), 10, ExecutionMode.BARRIERLESS,
        MemoryTechnique("inmemory"),
    )
    print("(a) whole TreeMap in memory:")
    print(ascii_heap_plot(heap_trace(oom, reducer_id=0, limit_mb=cluster.heap_limit_mb)))
    spill = sim.run(
        wordcount_profile(16.0), 10, ExecutionMode.BARRIERLESS,
        MemoryTechnique("spillmerge", spill_threshold_mb=240.0),
    )
    print("\n(b) disk spill and merge (threshold 240 MB):")
    print(ascii_heap_plot(heap_trace(spill, reducer_id=0, limit_mb=cluster.heap_limit_mb)))


if __name__ == "__main__":
    main()
