#!/usr/bin/env python
"""Iterated genetic algorithm as barrier-less MapReduce generations (§4.6).

Each MapReduce job is one GA generation: mappers evaluate OneMax fitness,
reducers perform windowed selection + crossover (the cross-key operation
class).  The job runs with ``ExecutionMode.BARRIERLESS`` — as Table 2
notes, the GA needs *zero* code changes to drop the barrier because its
reducer only ever holds a fixed-size window.

Run:  python examples/genetic_search.py
"""

from __future__ import annotations

from repro.apps import genetic
from repro.core import ExecutionMode
from repro.engine import LocalEngine
from repro.workloads import generate_population, mean_fitness, onemax_fitness

GENOME_BITS = 32
POPULATION = 256
GENERATIONS = 8


def main() -> None:
    population = generate_population(POPULATION, GENOME_BITS, seed=11)
    engine = LocalEngine()

    print(f"OneMax, {POPULATION} individuals, {GENOME_BITS}-bit genomes")
    print(f"{'gen':>4s}  {'mean fitness':>12s}  {'best':>4s}")
    print(f"{0:4d}  {mean_fitness(population):12.3f}  "
          f"{max(onemax_fitness(g) for _, g in population):4d}")

    current = population
    for generation in range(1, GENERATIONS + 1):
        job = genetic.make_job(
            ExecutionMode.BARRIERLESS,
            window_size=16,
            genome_bits=GENOME_BITS,
            num_reducers=4,
        )
        result = engine.run(job, current, num_maps=8)
        current = [(i, record.key) for i, record in enumerate(result.all_output())]
        assert len(current) == POPULATION, "population size must be conserved"
        best = max(onemax_fitness(g) for _, g in current)
        print(f"{generation:4d}  {mean_fitness(current):12.3f}  {best:4d}")

    assert mean_fitness(current) > mean_fitness(population)
    print("\nSelection pressure drove mean fitness up across generations,")
    print("with reducer memory fixed at O(window_size) throughout.")


if __name__ == "__main__":
    main()
