#!/usr/bin/env python
"""Quickstart: WordCount with and without the stage barrier.

Runs the paper's running example (§3.2) on the threaded engine: the same
corpus is counted under original-Hadoop semantics (barrier: shuffle →
sort → reduce) and under barrier-less semantics (reduce pipelined with
the shuffle, partial results in a red-black TreeMap), then verifies both
produce identical output.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.apps import wordcount
from repro.core import ExecutionMode
from repro.engine import ThreadedEngine
from repro.workloads import generate_documents


def main() -> None:
    # A deterministic ~200 KB synthetic corpus with Zipf word frequencies.
    corpus = generate_documents(
        num_docs=100, words_per_doc=300, vocab_size=2000, seed=42
    )

    results = {}
    for mode in ExecutionMode:
        engine = ThreadedEngine(map_slots=4)
        job = wordcount.make_job(mode, num_reducers=4)
        results[mode] = engine.run(job, corpus, num_maps=8)

    barrier = results[ExecutionMode.BARRIER]
    barrierless = results[ExecutionMode.BARRIERLESS]

    # The paper's correctness claim: breaking the barrier changes nothing
    # about the answer.
    assert barrier.output_as_dict() == barrierless.output_as_dict()
    assert barrier.output_as_dict() == wordcount.reference_output(corpus)

    top = sorted(
        barrier.output_as_dict().items(), key=lambda item: -item[1]
    )[:8]
    print("Top words (identical in both modes):")
    for word, count in top:
        print(f"  {word:10s} {count:6d}")

    print("\nPer-mode execution summary:")
    for mode, result in results.items():
        counters = result.counters
        print(
            f"  {mode.value:12s}  map tasks={counters.get('map.tasks')}  "
            f"reduce tasks={counters.get('reduce.tasks')}  "
            f"intermediate records={counters.get('map.output_records')}  "
            f"wall={result.stage_times.job_done:.3f}s"
        )
    print(
        "\nNote: wall-clock parity is expected here — real speedups come "
        "from cluster-level mapper slack, which examples/cluster_simulation.py "
        "demonstrates on the simulated 16-node testbed."
    )


if __name__ == "__main__":
    main()
