"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nosuchapp"])

    def test_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "wc", "--mode", "turbo"])


class TestCommands:
    def test_classify(self, capsys):
        assert main(["classify"]) == 0
        out = capsys.readouterr().out
        assert "Word Count" in out
        assert "O(window_size)" in out

    def test_effort(self, capsys):
        assert main(["effort"]) == 0
        out = capsys.readouterr().out
        assert "Black-Scholes" in out
        assert "0%" in out

    @pytest.mark.parametrize("app", ["wc", "sort", "pp", "ga"])
    def test_run_small(self, app, capsys):
        assert main(["run", app, "--records", "300", "--maps", "2",
                     "--reducers", "2"]) == 0
        out = capsys.readouterr().out
        assert "reduce tasks=2" in out

    def test_run_barrier_mode(self, capsys):
        assert main(["run", "wc", "--mode", "barrier", "--records", "200"]) == 0
        assert "mode=barrier" in capsys.readouterr().out

    def test_run_with_spillmerge(self, capsys):
        assert main(["run", "wc", "--records", "200", "--store",
                     "spillmerge"]) == 0
        assert "store=spillmerge" in capsys.readouterr().out

    def test_run_bs(self, capsys):
        assert main(["run", "bs", "--records", "2000", "--maps", "2"]) == 0
        out = capsys.readouterr().out
        assert "'mean'" in out

    def test_compare_wc(self, capsys):
        assert main(["compare", "wc", "--size-gb", "4"]) == 0
        out = capsys.readouterr().out
        assert "With barrier" in out
        assert "Improvement" in out

    def test_compare_bs_forces_single_reducer(self, capsys):
        assert main(["compare", "bs", "--mappers", "50"]) == 0
        assert "(1 reducers)" in capsys.readouterr().out

    def test_figure_fig8(self, capsys):
        assert main(["figure", "fig8"]) == 0
        assert "Reducers" in capsys.readouterr().out

    def test_figure_fig5(self, capsys):
        assert main(["figure", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "KILLED" in out  # panel (a) job death is rendered
        assert "spill and merge" in out

    def test_multiple_figures(self, capsys):
        assert main(["figure", "fig7", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "===== fig7 =====" in out
        assert "===== fig10 =====" in out


class TestExportCommands:
    def test_export_command(self, tmp_path, capsys):
        assert main(["export", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table2_loc.csv" in out
        assert (tmp_path / "fig8_reducers.csv").exists()

    def test_figure_with_csv_flag(self, tmp_path, capsys):
        assert main(["figure", "fig8", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig9_memory_vs_reducers.csv").exists()


class TestPipelineCommand:
    def test_similarity_pipeline(self, capsys):
        assert main(["pipeline", "similarity", "--size", "30"]) == 0
        assert "similar pairs" in capsys.readouterr().out

    def test_smt_pipeline(self, capsys):
        assert main(["pipeline", "smt", "--size", "40"]) == 0
        out = capsys.readouterr().out
        assert "source words" in out
        assert "->" in out

    def test_smt_barrier_mode(self, capsys):
        assert main(["pipeline", "smt", "--size", "30", "--mode", "barrier"]) == 0
