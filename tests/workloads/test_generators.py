"""Tests for the synthetic workload generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.workloads.ints import generate_sort_records, is_sorted_output
from repro.workloads.listens import generate_listens, unique_listens_reference
from repro.workloads.options import (
    OptionParams,
    black_scholes_closed_form,
    generate_mc_batches,
    simulate_option_values,
)
from repro.workloads.points import (
    brute_force_knn,
    generate_knn_dataset,
    knn_input_pairs,
)
from repro.workloads.population import (
    crossover,
    generate_population,
    mean_fitness,
    onemax_fitness,
)
from repro.workloads.text import (
    corpus_size_bytes,
    expected_distinct_words,
    generate_documents,
    vocabulary,
    zipf_probabilities,
)


class TestText:
    def test_deterministic_under_seed(self):
        a = generate_documents(5, 20, 100, seed=3)
        b = generate_documents(5, 20, 100, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_documents(5, 20, 100, seed=3)
        b = generate_documents(5, 20, 100, seed=4)
        assert a != b

    def test_document_shape(self):
        docs = generate_documents(3, 10, 50, seed=1)
        assert len(docs) == 3
        for doc_id, text in docs:
            assert doc_id.startswith("doc")
            assert len(text.split()) == 10

    def test_zipf_skew(self):
        # The most frequent word should dominate the tail heavily.
        docs = generate_documents(50, 200, 500, seed=5, zipf_s=1.2)
        counts: dict[str, int] = {}
        for _, text in docs:
            for word in text.split():
                counts[word] = counts.get(word, 0) + 1
        top = max(counts.values())
        median = sorted(counts.values())[len(counts) // 2]
        assert top > 10 * median

    def test_zipf_probabilities_normalised(self):
        probs = zipf_probabilities(1000, 1.1)
        assert probs.sum() == pytest.approx(1.0)
        assert (np.diff(probs) <= 0).all()  # decreasing by rank

    def test_zipf_rejects_empty_vocab(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)

    def test_empty_corpus(self):
        assert generate_documents(0) == []

    def test_helpers(self):
        docs = generate_documents(4, 25, 30, seed=2)
        assert corpus_size_bytes(docs) > 0
        assert 1 <= expected_distinct_words(docs) <= 30
        assert len(vocabulary(10)) == 10

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_documents(-1)
        with pytest.raises(ValueError):
            generate_documents(1, words_per_doc=0)


class TestInts:
    def test_deterministic(self):
        assert generate_sort_records(50, seed=1) == generate_sort_records(50, seed=1)

    def test_value_mirrors_key(self):
        for key, value in generate_sort_records(100, key_range=50, seed=2):
            assert key == value
            assert 0 <= key < 50

    def test_is_sorted_output(self):
        assert is_sorted_output([(1, 1), (1, 1), (2, 2)])
        assert not is_sorted_output([(2, 2), (1, 1)])
        assert is_sorted_output([])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_sort_records(-1)
        with pytest.raises(ValueError):
            generate_sort_records(1, key_range=0)


class TestPoints:
    def test_experimental_values_unique(self):
        experimental, _ = generate_knn_dataset(200, 100, seed=1)
        assert len(set(experimental)) == 200

    def test_range_respected(self):
        experimental, training = generate_knn_dataset(10, 50, seed=2, value_range=1000)
        assert all(0 <= v < 1000 for v in experimental + training)

    def test_uniqueness_impossible_raises(self):
        with pytest.raises(ValueError):
            generate_knn_dataset(11, 5, value_range=10)

    def test_input_pairs_tagging(self):
        pairs = knn_input_pairs([1], [2, 3])
        kinds = [value[0] for _, value in pairs]
        assert kinds == ["exp", "train", "train"]

    def test_brute_force_reference(self):
        answers = brute_force_knn([100], [90, 105, 300], 2)
        assert answers[100] == [(105, 5), (90, 10)]


class TestListens:
    def test_paper_defaults(self):
        listens = generate_listens(100, seed=1)
        tracks = {t for _, (t, _) in listens}
        users = {u for _, (_, u) in listens}
        assert all(t.startswith("track") for t in tracks)
        assert all(u.startswith("user") for u in users)

    def test_reference_counts(self):
        listens = [
            (0, ("t1", "u1")),
            (1, ("t1", "u1")),
            (2, ("t1", "u2")),
            (3, ("t2", "u1")),
        ]
        assert unique_listens_reference(listens) == {"t1": 2, "t2": 1}

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_listens(-1)
        with pytest.raises(ValueError):
            generate_listens(1, num_users=0)


class TestPopulation:
    def test_genome_bits_respected(self):
        population = generate_population(100, genome_bits=8, seed=1)
        assert all(0 <= genome < 256 for _, genome in population)

    def test_onemax(self):
        assert onemax_fitness(0b1011) == 3
        assert onemax_fitness(0) == 0

    def test_mean_fitness(self):
        assert mean_fitness([(0, 0b11), (1, 0b1)]) == pytest.approx(1.5)
        assert mean_fitness([]) == 0.0

    def test_crossover_swaps_low_bits(self):
        child_a, child_b = crossover(0b11110000, 0b00001111, 4, 8)
        assert child_a == 0b11111111
        assert child_b == 0b00000000

    def test_crossover_rejects_bad_point(self):
        with pytest.raises(ValueError):
            crossover(1, 2, 0, 8)
        with pytest.raises(ValueError):
            crossover(1, 2, 8, 8)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_population(-1)
        with pytest.raises(ValueError):
            generate_population(1, genome_bits=64)


class TestOptions:
    def test_closed_form_sane(self):
        # At-the-money call with 20% vol, 5% rate, 1y: ~10.45 (textbook).
        price = black_scholes_closed_form(OptionParams())
        assert price == pytest.approx(10.4506, abs=0.001)

    def test_simulation_is_deterministic(self):
        a = simulate_option_values(OptionParams(), 100, seed=1)
        b = simulate_option_values(OptionParams(), 100, seed=1)
        assert np.array_equal(a, b)

    def test_payoffs_nonnegative(self):
        values = simulate_option_values(OptionParams(), 1000, seed=2)
        assert (values >= 0).all()

    def test_monte_carlo_matches_closed_form(self):
        params = OptionParams()
        values = simulate_option_values(params, 200_000, seed=3)
        standard_error = values.std() / math.sqrt(values.size)
        assert abs(values.mean() - black_scholes_closed_form(params)) < 4 * standard_error

    def test_batches_have_distinct_seeds(self):
        batches = generate_mc_batches(5, 10, seed=0)
        seeds = {seed for _, (_, _, seed) in batches}
        assert len(seeds) == 5

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_mc_batches(0)
        with pytest.raises(ValueError):
            OptionParams(spot=-1).validate()
