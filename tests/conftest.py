"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.engine.local import LocalEngine
from repro.engine.threaded import ThreadedEngine
from repro.workloads.text import generate_documents

# CI runs the wire-codec fuzz suite with this profile: deterministic
# (derandomized) and bounded, so failures reproduce locally while CI
# stays fast.  Local runs keep hypothesis's default exploration.
settings.register_profile("ci", derandomize=True, deadline=None)


@pytest.fixture
def local_engine() -> LocalEngine:
    """The deterministic reference engine."""
    return LocalEngine()


@pytest.fixture
def threaded_engine() -> ThreadedEngine:
    """A small threaded engine (2 map slots)."""
    return ThreadedEngine(map_slots=2)


@pytest.fixture
def small_corpus():
    """A deterministic 30-document corpus for text jobs."""
    return generate_documents(30, words_per_doc=40, vocab_size=150, seed=7)
