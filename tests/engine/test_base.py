"""Tests for shared engine machinery (map tasks, partitioning, shuffle)."""

from __future__ import annotations

import pytest

from repro.core.api import FunctionCombiner, Mapper
from repro.core.job import JobSpec
from repro.core.types import Counters, ExecutionMode, Record
from repro.core.patterns import AggregationReducer
from repro.engine.base import (
    apply_combiner,
    barrier_merge_sort,
    interleave_arrival,
    partition_records,
    prepare_reducer,
    run_map_task,
)
from repro.memory.spill import SpillMergeStore
from repro.memory.store import TreeMapStore


class WordMapper(Mapper):
    def map(self, key, value, context):
        for word in value.split():
            context.emit(word, 1)


def _wc_spec(**overrides) -> JobSpec:
    config = dict(
        name="wc",
        mapper_factory=WordMapper,
        reducer_factory=lambda: AggregationReducer(lambda a, b: a + b, 0),
        num_reducers=3,
        mode=ExecutionMode.BARRIERLESS,
    )
    config.update(overrides)
    return JobSpec(**config)


class TestRunMapTask:
    def test_emits_and_counts(self):
        counters = Counters()
        records = run_map_task(_wc_spec(), [(0, "a b a")], counters)
        assert records == [Record("a", 1), Record("b", 1), Record("a", 1)]
        assert counters.get("map.input_records") == 1
        assert counters.get("map.output_records") == 3

    def test_combiner_collapses_per_task(self):
        spec = _wc_spec(
            combiner_factory=lambda: FunctionCombiner(lambda a, b: a + b)
        )
        counters = Counters()
        records = run_map_task(spec, [(0, "a b a a")], counters)
        assert sorted((r.key, r.value) for r in records) == [("a", 3), ("b", 1)]
        assert counters.get("combine.output_records") == 2


class TestApplyCombiner:
    def test_preserves_first_seen_key_order(self):
        spec = _wc_spec(combiner_factory=lambda: FunctionCombiner(max))
        records = [Record("b", 1), Record("a", 5), Record("b", 9)]
        combined = apply_combiner(spec, records, Counters())
        assert combined == [Record("b", 9), Record("a", 5)]


class TestPartitionRecords:
    def test_all_partitions_present(self):
        partitions = partition_records(_wc_spec(), [])
        assert set(partitions) == {0, 1, 2}

    def test_same_key_same_partition(self):
        records = [Record("hot", i) for i in range(10)]
        partitions = partition_records(_wc_spec(), records)
        non_empty = [p for p, rs in partitions.items() if rs]
        assert len(non_empty) == 1
        assert len(partitions[non_empty[0]]) == 10

    def test_conserves_records(self):
        records = [Record(f"k{i}", i) for i in range(100)]
        partitions = partition_records(_wc_spec(), records)
        assert sum(len(rs) for rs in partitions.values()) == 100


class TestShuffleVariants:
    def test_barrier_merge_sort_sorts_by_key(self):
        outputs = [[Record("c", 1)], [Record("a", 2), Record("b", 3)]]
        merged = barrier_merge_sort(outputs)
        assert [r.key for r in merged] == ["a", "b", "c"]

    def test_barrier_merge_sort_stable_within_key(self):
        outputs = [[Record("k", "first")], [Record("k", "second")]]
        merged = barrier_merge_sort(outputs)
        assert [r.value for r in merged] == ["first", "second"]

    def test_interleave_preserves_mapper_order(self):
        outputs = [[Record("z", 1)], [Record("a", 2)]]
        stream = interleave_arrival(outputs)
        assert [r.key for r in stream] == ["z", "a"]  # not sorted


class TestPrepareReducer:
    def test_attaches_store_from_memory_config(self):
        reducer = prepare_reducer(_wc_spec())
        assert isinstance(reducer.store, TreeMapStore)

    def test_honours_custom_store_factory(self):
        spec = _wc_spec(
            store_factory=lambda: SpillMergeStore(
                lambda a, b: a + b, spill_threshold_bytes=1024
            )
        )
        reducer = prepare_reducer(spec)
        assert isinstance(reducer.store, SpillMergeStore)

    def test_plain_reducer_gets_no_store(self):
        from repro.core.api import Reducer

        spec = _wc_spec(reducer_factory=Reducer)
        reducer = prepare_reducer(spec)
        assert not hasattr(reducer, "store")
