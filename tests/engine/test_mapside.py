"""Tests for the map-side sort-and-spill buffer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import wordcount
from repro.core.api import Mapper, Reducer
from repro.core.job import JobSpec, MemoryConfig
from repro.core.types import Counters, ExecutionMode, default_partition
from repro.dfs.wire import WireConfig
from repro.engine.base import run_map_task_partitioned
from repro.engine.local import LocalEngine
from repro.engine.mapside import MapOutputBuffer
from repro.workloads.text import generate_documents


def make_buffer(partitions=3, buffer_bytes=1 << 20):
    return MapOutputBuffer(partitions, default_partition, buffer_bytes)


class TestMapOutputBuffer:
    def test_small_output_stays_in_memory(self):
        buffer = make_buffer()
        buffer.collect("a", 1)
        buffer.collect("b", 2)
        assert buffer.num_spills == 0
        assert buffer.records_collected == 2
        buffer.close()

    def test_spills_when_full(self):
        buffer = make_buffer(buffer_bytes=512)
        for i in range(50):
            buffer.collect(f"key-{i:03d}", i)
        assert buffer.num_spills > 0
        assert buffer.memory_used() < 512
        buffer.close()

    def test_partitions_complete_and_key_sorted(self):
        buffer = make_buffer(partitions=4, buffer_bytes=400)
        expected: dict[int, list] = {p: [] for p in range(4)}
        for i in range(120):
            key = f"key-{i % 37:03d}"
            buffer.collect(key, i)
            expected[default_partition(key, 4)].append(key)
        total = 0
        for partition in range(4):
            records = list(buffer.partition_records(partition))
            keys = [record.key for record in records]
            assert keys == sorted(keys), partition
            assert sorted(keys) == sorted(expected[partition])
            total += len(records)
        assert total == 120
        buffer.close()

    def test_same_key_single_partition(self):
        buffer = make_buffer(partitions=5, buffer_bytes=300)
        for i in range(60):
            buffer.collect("hot", i)
        non_empty = [
            p for p in range(5) if list(buffer.partition_records(p))
        ]
        assert len(non_empty) == 1
        assert len(list(buffer.partition_records(non_empty[0]))) == 60
        buffer.close()

    def test_invalid_partition_rejected(self):
        buffer = make_buffer(partitions=2)
        with pytest.raises(ValueError):
            list(buffer.partition_records(7))
        buffer.close()

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MapOutputBuffer(0, default_partition)
        with pytest.raises(ValueError):
            MapOutputBuffer(1, default_partition, buffer_bytes=0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 30), st.integers()), max_size=150),
        st.integers(200, 5000),
        st.integers(1, 6),
    )
    def test_property_conserves_records(self, pairs, buffer_bytes, partitions):
        buffer = MapOutputBuffer(partitions, default_partition, buffer_bytes)
        for key, value in pairs:
            buffer.collect(key, value)
        out = []
        for partition in range(partitions):
            out.extend(
                (r.key, r.value) for r in buffer.partition_records(partition)
            )
        assert sorted(out) == sorted(pairs)
        buffer.close()


class TestEngineIntegration:
    @pytest.fixture
    def corpus(self):
        return generate_documents(20, words_per_doc=30, vocab_size=80, seed=6)

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_spilled_map_output_same_result(self, mode, corpus):
        job = wordcount.make_job(mode, num_reducers=3)
        job.map_output_buffer_bytes = 2048  # tiny: forces spills
        counters = Counters()
        result = LocalEngine().run(job, corpus, num_maps=4)
        assert result.output_as_dict() == wordcount.reference_output(corpus)
        assert result.counters.get("map.output_spills") > 0

    def test_run_map_task_partitioned_matches_in_memory(self, corpus):
        job_memory = wordcount.make_job(ExecutionMode.BARRIER, num_reducers=3)
        job_spill = wordcount.make_job(ExecutionMode.BARRIER, num_reducers=3)
        job_spill.map_output_buffer_bytes = 1024
        split = corpus[:5]
        in_memory = run_map_task_partitioned(job_memory, split, Counters())
        spilled = run_map_task_partitioned(job_spill, split, Counters())
        for partition in range(3):
            assert sorted(
                (r.key, r.value) for r in in_memory[partition]
            ) == sorted((r.key, r.value) for r in spilled[partition])

    def test_validation_rejects_nonpositive_buffer(self):
        job = wordcount.make_job(ExecutionMode.BARRIER)
        job.map_output_buffer_bytes = 0
        with pytest.raises(Exception):
            job.validate()


class TestAllEnginesWithSpilledMapOutput:
    def test_threaded_engine(self, corpus=None):
        from repro.engine.threaded import ThreadedEngine
        from repro.workloads.text import generate_documents

        corpus = generate_documents(15, 25, 60, seed=2)
        job = wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=2)
        job.map_output_buffer_bytes = 1024
        result = ThreadedEngine(map_slots=2).run(job, corpus, num_maps=3)
        assert result.output_as_dict() == wordcount.reference_output(corpus)

    def test_multiprocess_engine(self):
        from repro.engine.multiproc import MultiprocessEngine
        from repro.workloads.text import generate_documents

        corpus = generate_documents(15, 25, 60, seed=3)
        job = wordcount.make_job(ExecutionMode.BARRIER, num_reducers=2)
        job.map_output_buffer_bytes = 1024
        result = MultiprocessEngine(processes=2).run(job, corpus, num_maps=3)
        assert result.output_as_dict() == wordcount.reference_output(corpus)


class _ExplodingMapper(Mapper):
    """Emits enough to force spills, then dies mid-task."""

    def map(self, key, value, context):
        for i in range(40):
            context.emit(f"{key}-{i:03d}", i)
        if key >= 2:
            raise RuntimeError("map task failure after spilling")


class TestSpillCleanup:
    """Spill files must never outlive the buffer, success or failure."""

    def _fill(self, buffer, records=80):
        for i in range(records):
            buffer.collect(f"key-{i:03d}", i)

    def test_close_removes_spill_files(self, tmp_path):
        buffer = MapOutputBuffer(
            2, default_partition, buffer_bytes=256, spill_dir=str(tmp_path)
        )
        self._fill(buffer)
        assert buffer.num_spills > 0
        assert any(tmp_path.iterdir())
        buffer.close()
        assert list(tmp_path.iterdir()) == []

    def test_context_manager_cleans_on_raise(self, tmp_path):
        with pytest.raises(RuntimeError, match="mid-spill"):
            with MapOutputBuffer(
                2, default_partition, buffer_bytes=256, spill_dir=str(tmp_path)
            ) as buffer:
                self._fill(buffer)
                assert buffer.num_spills > 0
                raise RuntimeError("failure mid-spill")
        assert list(tmp_path.iterdir()) == []

    def test_partial_write_failure_is_cleaned_up(self, tmp_path):
        """A record the wire codec cannot encode aborts the spill midway;
        the partially written file must still be deleted on close."""
        buffer = MapOutputBuffer(
            1,
            default_partition,
            buffer_bytes=1 << 20,
            spill_dir=str(tmp_path),
            wire=WireConfig(),
        )
        buffer.collect("fine", 1)
        buffer.collect("poison", object())  # unencodable by the typed codec
        with pytest.raises(Exception):
            buffer._spill()
        assert any(tmp_path.iterdir())  # partial file exists pre-close
        buffer.close()
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("wire", [None, WireConfig()], ids=["pkl", "wire"])
    def test_failed_map_task_leaves_spill_dir_empty(self, tmp_path, wire):
        job = JobSpec(
            name="exploding",
            mapper_factory=_ExplodingMapper,
            reducer_factory=Reducer,
            num_reducers=3,
            map_output_buffer_bytes=512,
            memory=MemoryConfig(spill_dir=str(tmp_path)),
        )
        with pytest.raises(RuntimeError, match="after spilling"):
            run_map_task_partitioned(
                job, [(k, "v") for k in range(5)], Counters(), wire=wire
            )
        assert list(tmp_path.iterdir()) == []

    def test_successful_map_task_leaves_spill_dir_empty(self, tmp_path):
        corpus = generate_documents(10, words_per_doc=30, vocab_size=50, seed=9)
        job = wordcount.make_job(ExecutionMode.BARRIER, num_reducers=2)
        job.map_output_buffer_bytes = 512
        job.memory = MemoryConfig(spill_dir=str(tmp_path))
        counters = Counters()
        partitions = run_map_task_partitioned(
            job, corpus, counters, wire=WireConfig()
        )
        assert counters.get("map.output_spills") > 0
        assert sum(len(records) for records in partitions.values()) > 0
        assert list(tmp_path.iterdir()) == []


class TestWireSpillCodec:
    """Spills written with the framed wire codec round-trip correctly."""

    def test_wire_spill_files_and_accounting(self, tmp_path):
        buffer = MapOutputBuffer(
            3,
            default_partition,
            buffer_bytes=300,
            spill_dir=str(tmp_path),
            wire=WireConfig(),
        )
        expected: dict[int, list] = {p: [] for p in range(3)}
        for i in range(90):
            key = f"key-{i % 23:03d}"
            buffer.collect(key, i)
            expected[default_partition(key, 3)].append(key)
        assert buffer.num_spills > 0
        suffixes = {path.suffix for path in tmp_path.iterdir()}
        assert suffixes == {".wire"}
        assert buffer.raw_bytes_spilled > 0
        assert buffer.wire_bytes_spilled > 0
        total = 0
        for partition in range(3):
            records = list(buffer.partition_records(partition))
            keys = [record.key for record in records]
            assert keys == sorted(keys)
            assert sorted(keys) == sorted(expected[partition])
            total += len(records)
        assert total == 90
        buffer.close()
        assert list(tmp_path.iterdir()) == []

    def test_wire_and_pickle_spills_agree(self, tmp_path):
        def run(wire):
            buffer = MapOutputBuffer(
                2, default_partition, buffer_bytes=256, wire=wire
            )
            for i in range(70):
                buffer.collect(f"key-{i % 11:02d}", (i, f"v{i}"))
            out = {
                p: [(r.key, r.value) for r in buffer.partition_records(p)]
                for p in range(2)
            }
            buffer.close()
            return out

        assert run(None) == run(WireConfig())
