"""Tests for the online/streaming barrier-less engine."""

from __future__ import annotations

import pytest

from repro.apps import lastfm, wordcount
from repro.core.job import MemoryConfig
from repro.core.types import ExecutionMode, InvalidJobError
from repro.engine.streaming import StreamingEngine
from repro.workloads.listens import generate_listens, unique_listens_reference
from repro.workloads.text import generate_documents


@pytest.fixture
def corpus():
    return generate_documents(20, words_per_doc=25, vocab_size=60, seed=4)


class TestLifecycle:
    def test_rejects_barrier_mode(self):
        with pytest.raises(InvalidJobError):
            StreamingEngine(wordcount.make_job(ExecutionMode.BARRIER))

    def test_close_twice_raises(self, corpus):
        stream = StreamingEngine(wordcount.make_job(ExecutionMode.BARRIERLESS))
        stream.push(corpus)
        stream.close()
        with pytest.raises(RuntimeError):
            stream.close()

    def test_push_after_close_raises(self, corpus):
        stream = StreamingEngine(wordcount.make_job(ExecutionMode.BARRIERLESS))
        stream.close()
        with pytest.raises(RuntimeError):
            stream.push(corpus)


class TestStreamEqualsBatch:
    def test_wordcount_over_micro_batches(self, corpus):
        stream = StreamingEngine(
            wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=3)
        )
        for i in range(0, len(corpus), 3):
            stream.push(corpus[i : i + 3])
        result = stream.close()
        assert result.output_as_dict() == wordcount.reference_output(corpus)

    def test_single_push_equals_batch(self, corpus):
        stream = StreamingEngine(wordcount.make_job(ExecutionMode.BARRIERLESS))
        stream.push(corpus)
        assert stream.close().output_as_dict() == wordcount.reference_output(corpus)

    def test_lastfm_streaming(self):
        listens = generate_listens(600, num_users=10, num_tracks=30, seed=5)
        stream = StreamingEngine(
            lastfm.make_job(ExecutionMode.BARRIERLESS, num_reducers=2)
        )
        for i in range(0, len(listens), 100):
            stream.push(listens[i : i + 100])
        result = stream.close()
        assert result.output_as_dict() == unique_listens_reference(listens)

    def test_empty_stream(self):
        stream = StreamingEngine(wordcount.make_job(ExecutionMode.BARRIERLESS))
        assert stream.close().all_output() == []


class TestSnapshots:
    def test_snapshots_are_running_aggregates(self, corpus):
        stream = StreamingEngine(
            wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=2)
        )
        half = len(corpus) // 2
        stream.push(corpus[:half])
        early = stream.snapshot()
        assert early == wordcount.reference_output(corpus[:half])
        stream.push(corpus[half:])
        late = stream.snapshot()
        assert late == wordcount.reference_output(corpus)
        stream.close()

    def test_snapshot_counts_monotone(self, corpus):
        stream = StreamingEngine(wordcount.make_job(ExecutionMode.BARRIERLESS))
        previous: dict = {}
        for i in range(0, len(corpus), 5):
            stream.push(corpus[i : i + 5])
            snap = stream.snapshot()
            for word, count in previous.items():
                assert snap.get(word, 0) >= count
            previous = snap
        stream.close()

    def test_snapshot_before_any_push(self):
        stream = StreamingEngine(wordcount.make_job(ExecutionMode.BARRIERLESS))
        assert stream.snapshot() == {}
        stream.close()

    def test_snapshot_with_spillmerge_store(self, corpus):
        # Online mode also works over the spill-capable store; the live
        # snapshot sees the buffered (unspilled) partials and the final
        # close() reconciles everything.
        job = wordcount.make_job(
            ExecutionMode.BARRIERLESS,
            memory=MemoryConfig(store="spillmerge", spill_threshold_bytes=1 << 20),
        )
        stream = StreamingEngine(job)
        stream.push(corpus)
        snap = stream.snapshot()
        assert snap  # visible running counts
        result = stream.close()
        assert result.output_as_dict() == wordcount.reference_output(corpus)


class TestSnapshotAcrossReduceClasses:
    def test_selection_snapshot_shows_running_topk(self):
        from repro.core import JobSpec, SelectionReducer
        from repro.core.api import Mapper

        class PassMapper(Mapper):
            def map(self, key, value, context):
                context.emit(key, value)

        job = JobSpec(
            name="topk-stream",
            mapper_factory=PassMapper,
            reducer_factory=lambda: SelectionReducer(k=2, score=lambda v: v),
            num_reducers=1,
            mode=ExecutionMode.BARRIERLESS,
        )
        stream = StreamingEngine(job)
        stream.push([("sensor", 9.0), ("sensor", 3.0)])
        assert stream.snapshot()["sensor"] == [3.0, 9.0]
        stream.push([("sensor", 1.0)])  # displaces 9.0 from the top-2
        assert stream.snapshot()["sensor"] == [1.0, 3.0]
        result = stream.close()
        assert [r.value for r in result.all_output()] == [1.0, 3.0]

    def test_many_small_batches_stress(self, corpus):
        stream = StreamingEngine(
            wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=4)
        )
        for pair in corpus:  # one document per batch
            stream.push([pair])
        result = stream.close()
        assert result.output_as_dict() == wordcount.reference_output(corpus)
