"""Differential chaos suite for the shuffle recovery subsystem.

The contract under test is the paper's §8 claim made concrete: under any
single injected mapper, reducer or fetch failure, both execution modes
must produce output identical to a fault-free run — recovery changes
*when* work happens, never *what* is computed.  The suite drives every
bundled application through the :class:`ThreadedEngine` (the engine that
actually runs the epoch-tagged fetch protocol) under each failure class,
plus seeded multi-failure soaks, and unit-tests the recovery primitives
(:class:`BackoffPolicy`, :class:`FetchLedger`, :class:`MapOutputService`,
:class:`FetchFaultInjector`) directly.
"""

from __future__ import annotations

import threading

import pytest

from repro.apps.demo import APP_CHOICES, demo_job_and_input, normalized_output
from repro.core.types import ExecutionMode, Record
from repro.engine.faults import FaultInjector
from repro.engine.local import LocalEngine
from repro.engine.multiproc import MultiprocessEngine
from repro.engine.recovery import (
    BackoffPolicy,
    FetchAttemptError,
    FetchFaultInjector,
    FetchLedger,
    FetchPermanentlyFailedError,
    FetchTimeoutError,
    MapOutputLostError,
    MapOutputService,
    RecoveryConfig,
    ReducerCrashError,
    stable_fraction,
)
from repro.engine.streaming import StreamingEngine
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability

RECORDS = 300
NUM_MAPS = 3
NUM_REDUCERS = 2

#: Fast-failing recovery tuning so injected stalls cost milliseconds.
FAST = RecoveryConfig(
    fetch_timeout_s=0.02,
    straggler_threshold_s=0.02,
    backoff=BackoffPolicy(base_s=0.0005, cap_s=0.005),
)

#: name -> injector factory for one targeted failure of that class.
FAILURE_CLASSES = {
    "fetch-failure": lambda: FetchFaultInjector(
        fail_first_fetch_of=frozenset({(0, 0)})
    ),
    "fetch-stall": lambda: FetchFaultInjector(
        stall_first_fetch_of=frozenset({(0, 0)}), stall_seconds=0.05
    ),
    "fetch-drop": lambda: FetchFaultInjector(
        drop_first_fetch_of=frozenset({(0, 0)})
    ),
    "lost-map-output": lambda: FetchFaultInjector(lose_output_after={0: 1}),
    "reducer-crash": lambda: FetchFaultInjector(crash_reducer_after={0: 2}),
}

_baselines: dict[tuple[str, ExecutionMode], object] = {}


def _demo(app: str, mode: ExecutionMode):
    return demo_job_and_input(
        app, mode, records=RECORDS, num_reducers=NUM_REDUCERS,
        num_maps=NUM_MAPS,
    )


def _baseline(app: str, mode: ExecutionMode):
    """Fault-free normalized output, computed once per (app, mode)."""
    key = (app, mode)
    if key not in _baselines:
        job, pairs = _demo(app, mode)
        result = ThreadedEngine(map_slots=2).run(job, pairs, num_maps=NUM_MAPS)
        _baselines[key] = normalized_output(app, result)
    return _baselines[key]


# ---------------------------------------------------------------------------
# the differential matrix: every app x mode x single-failure class
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("failure", sorted(FAILURE_CLASSES))
@pytest.mark.parametrize("mode", list(ExecutionMode))
@pytest.mark.parametrize("app", APP_CHOICES)
def test_single_failure_output_identical(app, mode, failure):
    job, pairs = _demo(app, mode)
    injector = FAILURE_CLASSES[failure]()
    engine = ThreadedEngine(
        map_slots=2, fetch_injector=injector, recovery=FAST
    )
    result = engine.run(job, pairs, num_maps=NUM_MAPS)
    assert normalized_output(app, result) == _baseline(app, mode)


@pytest.mark.parametrize("mode", list(ExecutionMode))
@pytest.mark.parametrize("seed", range(4))
def test_multi_failure_soak(mode, seed):
    """Seeded probabilistic task + fetch + reducer faults, together."""
    job, pairs = _demo("wc", mode)
    injector = FetchFaultInjector(
        fetch_failure_probability=0.2,
        drop_probability=0.1,
        crash_reducer_after={0: 5},
        lose_output_after={1: 1},
        seed=seed,
    )
    engine = ThreadedEngine(
        map_slots=2,
        fault_injector=FaultInjector(failure_probability=0.2, seed=seed),
        fetch_injector=injector,
        recovery=FAST,
    )
    result = engine.run(job, pairs, num_maps=NUM_MAPS)
    assert normalized_output("wc", result) == _baseline("wc", mode)
    assert injector.injected > 0


# ---------------------------------------------------------------------------
# recovery visibility: each class leaves its counter trail (dense app)
# ---------------------------------------------------------------------------


def _run_wc(mode, injector, recovery=FAST):
    obs = JobObservability()
    job, pairs = _demo("wc", mode)
    engine = ThreadedEngine(
        map_slots=2, fetch_injector=injector, recovery=recovery, obs=obs
    )
    result = engine.run(job, pairs, num_maps=NUM_MAPS)
    assert normalized_output("wc", result) == _baseline("wc", mode)
    return obs


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_fetch_failure_counts_retries(mode):
    obs = _run_wc(mode, FAILURE_CLASSES["fetch-failure"]())
    assert obs.counters.get("shuffle.fetch.retries") >= 1


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_fetch_stall_counts_timeouts(mode):
    # Speculation off: with it on, a backup fetch can win the race
    # before the stalled primary's timeout is ever observed.
    no_speculation = RecoveryConfig(
        fetch_timeout_s=0.02,
        speculative_fetch=False,
        backoff=BackoffPolicy(base_s=0.0005, cap_s=0.005),
    )
    obs = _run_wc(
        mode, FAILURE_CLASSES["fetch-stall"](), recovery=no_speculation
    )
    assert obs.counters.get("shuffle.fetch.timeouts") >= 1


def test_stalled_fetch_gets_speculative_backup():
    # The stall (0.2s) is far past the straggler threshold but inside
    # the fetch timeout, so the only way the stream progresses promptly
    # is a backup fetch racing — and beating — the stalled primary.
    injector = FetchFaultInjector(
        stall_first_fetch_of=frozenset({(0, 0)}), stall_seconds=0.2
    )
    obs = _run_wc(
        ExecutionMode.BARRIERLESS,
        injector,
        recovery=RecoveryConfig(
            fetch_timeout_s=1.0, straggler_threshold_s=0.02
        ),
    )
    assert obs.counters.get("speculative.fetches") >= 1
    assert obs.counters.get("speculative.fetch_wins") >= 1


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_fetch_drop_counts_drops(mode):
    obs = _run_wc(mode, FAILURE_CLASSES["fetch-drop"]())
    assert obs.counters.get("shuffle.fetch.drops") >= 1


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_lost_output_reexecutes_and_dedups(mode):
    obs = _run_wc(mode, FAILURE_CLASSES["lost-map-output"]())
    counters = obs.counters
    assert counters.get("shuffle.map_output_lost") == 1
    assert counters.get("map.reexecutions") == 1
    assert counters.get("shuffle.epoch_restarts") >= 1
    # Re-fetched duplicates were discarded, not double-consumed.
    assert counters.get("shuffle.records.deduped") >= 1


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_reducer_crash_restarts(mode):
    obs = _run_wc(mode, FAILURE_CLASSES["reducer-crash"]())
    assert obs.counters.get("reduce.restarts") == 1
    if mode is ExecutionMode.BARRIERLESS:
        # The barrier-less reducer is store-backed; its partial store
        # died with the crashed attempt and was rebuilt.
        assert obs.counters.get("store.resets") == 1


def test_straggling_reducer_gets_speculative_backup():
    injector = FetchFaultInjector(stall_reducer_seconds={0: 0.3})
    obs = _run_wc(
        ExecutionMode.BARRIERLESS,
        injector,
        recovery=RecoveryConfig(straggler_threshold_s=0.03),
    )
    assert obs.counters.get("speculative.reduces") >= 1


def test_fetch_budget_exhaustion_fails_the_job():
    injector = FetchFaultInjector(fail_first_fetch_of=frozenset({(0, 0)}))
    tight = RecoveryConfig(
        max_fetch_attempts=1, backoff=BackoffPolicy(base_s=0.0, cap_s=0.0)
    )
    job, pairs = _demo("wc", ExecutionMode.BARRIERLESS)
    engine = ThreadedEngine(map_slots=2, fetch_injector=injector, recovery=tight)
    with pytest.raises(FetchPermanentlyFailedError):
        engine.run(job, pairs, num_maps=NUM_MAPS)


# ---------------------------------------------------------------------------
# streaming engine: crash mid-stream, journal replay, stream continues
# ---------------------------------------------------------------------------


def test_streaming_reducer_crash_is_replayed():
    from repro.apps import wordcount
    from repro.workloads.text import generate_documents

    corpus = generate_documents(12, words_per_doc=20, vocab_size=40, seed=3)
    job = wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=2)
    obs = JobObservability()
    engine = StreamingEngine(
        job, obs=obs,
        fault_injector=FetchFaultInjector(crash_reducer_after={0: 7}),
    )
    for start in range(0, len(corpus), 4):
        engine.push(corpus[start : start + 4])
    snapshot = engine.snapshot()  # must survive a crashed reducer
    result = engine.close()
    assert result.output_as_dict() == wordcount.reference_output(corpus)
    assert snapshot.keys() <= set(result.output_as_dict())
    assert obs.counters.get("reduce.restarts") >= 1
    assert obs.counters.get("store.resets") >= 1


# ---------------------------------------------------------------------------
# multiprocessing engine: process-level re-execution of crashed attempts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_multiproc_retries_crashed_attempts(mode):
    job, pairs = _demo("wc", mode)
    obs = JobObservability()
    injector = FaultInjector(
        fail_first_attempt_of=frozenset({"map-1", "reduce-0"})
    )
    engine = MultiprocessEngine(processes=2, obs=obs, fault_injector=injector)
    result = engine.run(job, pairs, num_maps=NUM_MAPS)
    assert normalized_output("wc", result) == _baseline("wc", mode)
    assert injector.injected == 2
    assert obs.counters.get("task.retries") == 2
    assert obs.counters.get("reduce.restarts") == 1


# ---------------------------------------------------------------------------
# unit tests: the recovery primitives
# ---------------------------------------------------------------------------


class TestStableFraction:
    def test_range_and_determinism(self):
        values = [stable_fraction(0, "k", i) for i in range(50)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [stable_fraction(0, "k", i) for i in range(50)]

    def test_sensitive_to_every_part(self):
        base = stable_fraction(1, "fetch", 2, 3)
        assert stable_fraction(2, "fetch", 2, 3) != base
        assert stable_fraction(1, "fetch", 2, 4) != base


class TestBackoffPolicy:
    def test_grows_and_caps(self):
        policy = BackoffPolicy(base_s=0.001, cap_s=0.008, multiplier=2.0)
        delays = [policy.delay("k", attempt) for attempt in range(10)]
        assert all(d <= 0.008 for d in delays)
        # The capped ceiling is reached despite jitter.
        assert max(delays) > 0.004

    def test_jitter_band(self):
        policy = BackoffPolicy(base_s=0.01, cap_s=0.01, multiplier=1.0)
        for attempt in range(20):
            assert 0.005 <= policy.delay("k", attempt) < 0.01

    def test_deterministic_but_desynchronised(self):
        policy = BackoffPolicy()
        assert policy.delay("a", 3) == policy.delay("a", 3)
        assert policy.delay("a", 3) != policy.delay("b", 3)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=0.1, cap_s=0.01)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)


def _records(n, mapper=0):
    return [Record(key=f"k{i}", value=mapper) for i in range(n)]


class TestFetchLedger:
    def test_in_order_admission_consumes(self):
        ledger = FetchLedger()
        assert ledger.admit(0, 0, _records(3)) is not None
        assert ledger.admit(0, 1, _records(2)) is not None
        assert ledger.fetched == 5
        assert ledger.consumed == 5
        assert ledger.deduped == 0

    def test_refetched_batch_is_deduped(self):
        ledger = FetchLedger()
        ledger.admit(0, 0, _records(3))
        assert ledger.admit(0, 0, _records(3)) is None
        assert ledger.fetched == 6
        assert ledger.consumed == 3
        assert ledger.deduped == 3
        assert ledger.fetched == ledger.consumed + ledger.deduped

    def test_gap_is_a_protocol_violation(self):
        ledger = FetchLedger()
        with pytest.raises(RuntimeError):
            ledger.admit(0, 2, _records(1))

    def test_barrier_reset_then_seal(self):
        ledger = FetchLedger(consume_on_admit=False)
        ledger.admit(0, 0, _records(4))
        ledger.reset(0, discarded_records=4)  # epoch changed: buffer cleared
        ledger.admit(0, 0, _records(4))  # clean re-fetch accepted again
        ledger.seal(4)
        assert ledger.fetched == 8
        assert ledger.consumed == 4
        assert ledger.deduped == 4
        assert ledger.fetched == ledger.consumed + ledger.deduped


class TestMapOutputService:
    def test_publish_read_roundtrip(self):
        service = MapOutputService(num_maps=1, num_reducers=1, batch_size=2)
        assert service.epoch_of(0) == -1
        assert service.publish(0, {0: _records(5)}) == 0
        batches = []
        seq = 0
        while True:
            epoch, batch = service.read(0, 0, seq)
            assert epoch == 0
            if batch is None:
                break
            batches.append(batch)
            seq += 1
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_lost_output_regenerates_under_new_epoch(self):
        service = MapOutputService(num_maps=1, num_reducers=1, batch_size=8)
        calls = []

        def regenerate(mapper):
            calls.append(mapper)
            return {0: _records(3)}

        service.regenerator = regenerate
        service.publish(0, {0: _records(3)})
        service.lose_output(0)
        epoch, batch = service.read(0, 0, 0)
        assert epoch == 1
        assert len(batch) == 3
        assert calls == [0]

    def test_lost_output_without_regenerator_is_fatal(self):
        service = MapOutputService(num_maps=1, num_reducers=1)
        service.publish(0, {0: _records(2)})
        service.lose_output(0)
        with pytest.raises(MapOutputLostError):
            service.read(0, 0, 0)

    def test_wait_available_times_out(self):
        service = MapOutputService(num_maps=1, num_reducers=1)
        with pytest.raises(FetchTimeoutError):
            service.wait_available(0, timeout=0.03)

    def test_wait_available_honours_cancellation(self):
        service = MapOutputService(num_maps=1, num_reducers=1)
        cancelled = threading.Event()
        cancelled.set()
        service.wait_available(0, timeout=10.0, cancelled=cancelled)  # no hang


class TestFetchFaultInjector:
    def test_targeted_failure_fires_on_first_attempt_only(self):
        injector = FetchFaultInjector(fail_first_fetch_of=frozenset({(0, 1)}))
        with pytest.raises(FetchAttemptError):
            injector.check_fetch(0, 1, seq=0, attempt=0)
        injector.check_fetch(0, 1, seq=0, attempt=1)  # retry succeeds
        injector.check_fetch(0, 1, seq=1, attempt=0)  # later batches clean
        injector.check_fetch(1, 1, seq=0, attempt=0)  # other streams clean
        assert injector.counts == {"fetch.failures": 1}
        assert injector.injected == 1

    def test_probabilistic_decisions_are_schedule_independent(self):
        a = FetchFaultInjector(fetch_failure_probability=0.5, seed=9)
        b = FetchFaultInjector(fetch_failure_probability=0.5, seed=9)
        outcomes = []
        for injector in (a, b):
            seen = []
            for seq in range(20):
                try:
                    injector.check_fetch(0, 0, seq, attempt=0)
                    seen.append(False)
                except FetchAttemptError:
                    seen.append(True)
            outcomes.append(seen)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_probabilistic_faults_stop_after_attempt_budget(self):
        injector = FetchFaultInjector(
            fetch_failure_probability=0.999999, max_injected_attempts=2
        )
        for seq in range(5):
            injector.check_fetch(0, 0, seq, attempt=2)  # never raises

    def test_reducer_crash_fires_exactly_once(self):
        injector = FetchFaultInjector(crash_reducer_after={1: 3})
        injector.check_reduce(1, consumed=2)
        with pytest.raises(ReducerCrashError):
            injector.check_reduce(1, consumed=3)
        injector.check_reduce(1, consumed=5)  # the restart runs clean
        assert injector.counts == {"reducer.crashes": 1}

    def test_lose_output_fires_exactly_once(self):
        injector = FetchFaultInjector(lose_output_after={0: 2})
        assert not injector.should_lose_output(0, serves=1)
        assert injector.should_lose_output(0, serves=2)
        assert not injector.should_lose_output(0, serves=3)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FetchFaultInjector(fetch_failure_probability=1.0)


# ---------------------------------------------------------------------------
# wire format on the fault paths: the ledger invariant holds over frames
# ---------------------------------------------------------------------------


class TestWireFaultPaths:
    """The batched wire format must not bend the recovery accounting.

    With the wire codec on (the default), the fetch protocol moves
    :class:`~repro.dfs.wire.WireBatch` frames instead of record lists;
    ``FetchLedger``'s ``fetched == consumed + deduped`` invariant and the
    epoch-restart dedup must hold unchanged, frame by frame.
    """

    def _assert_ledger_reconciles(self, obs):
        counters = obs.counters
        fetched = counters.get("shuffle.records.fetched")
        consumed = counters.get("shuffle.records.consumed")
        deduped = counters.get("shuffle.records.deduped")
        assert fetched == consumed + deduped, (
            f"ledger diverged: {fetched} != {consumed} + {deduped}"
        )
        # The run really went over the wire.
        assert counters.get("shuffle.batches") > 0
        assert (
            counters.get("shuffle.bytes.raw")
            >= counters.get("shuffle.bytes.wire")
            > 0
        )

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_ledger_invariant_under_drops(self, mode):
        obs = _run_wc(
            mode, FetchFaultInjector(drop_probability=0.3, seed=11)
        )
        assert obs.counters.get("shuffle.fetch.drops") >= 1
        self._assert_ledger_reconciles(obs)

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_ledger_invariant_under_timeouts(self, mode):
        no_speculation = RecoveryConfig(
            fetch_timeout_s=0.02,
            speculative_fetch=False,
            backoff=BackoffPolicy(base_s=0.0005, cap_s=0.005),
        )
        obs = _run_wc(
            mode,
            FetchFaultInjector(
                stall_first_fetch_of=frozenset({(0, 0)}),
                stall_seconds=0.05,
            ),
            recovery=no_speculation,
        )
        assert obs.counters.get("shuffle.fetch.timeouts") >= 1
        self._assert_ledger_reconciles(obs)

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_ledger_invariant_under_epoch_restart(self, mode):
        obs = _run_wc(mode, FetchFaultInjector(lose_output_after={0: 1}))
        counters = obs.counters
        assert counters.get("shuffle.epoch_restarts") >= 1
        # The restarted stream re-served whole frames; every duplicate
        # record arrived inside a frame and was discarded by the ledger.
        assert counters.get("shuffle.records.deduped") >= 1
        self._assert_ledger_reconciles(obs)

    def test_service_serves_wire_frames(self):
        from repro.dfs.wire import WireBatch, WireConfig, decode_batch

        wire = WireConfig(max_batch_records=2)
        service = MapOutputService(
            num_maps=1, num_reducers=1, wire=wire
        )
        service.publish(0, {0: _records(5)})
        frames = []
        seq = 0
        while True:
            epoch, batch = service.read(0, 0, seq)
            assert epoch == 0
            if batch is None:
                break
            assert isinstance(batch, WireBatch)
            frames.append(batch)
            seq += 1
        assert [len(frame) for frame in frames] == [2, 2, 1]
        decoded = [
            record for frame in frames for record in decode_batch(frame, wire)
        ]
        assert decoded == _records(5)

    def test_ledger_invariant_over_frames(self):
        from repro.dfs.wire import WireConfig, encode_record_batches

        wire = WireConfig(max_batch_records=2)
        frames = encode_record_batches(_records(5), wire)
        ledger = FetchLedger()
        for seq, frame in enumerate(frames):
            assert ledger.admit(0, seq, frame) is not None
        # A re-fetched frame (same mapper, same seq) is deduped whole.
        assert ledger.admit(0, 0, frames[0]) is None
        assert ledger.fetched == 5 + len(frames[0])
        assert ledger.consumed == 5
        assert ledger.deduped == len(frames[0])
        assert ledger.fetched == ledger.consumed + ledger.deduped

    def test_barrier_reset_then_seal_over_frames(self):
        from repro.dfs.wire import WireConfig, encode_record_batches

        wire = WireConfig(max_batch_records=4)
        frames = encode_record_batches(_records(4), wire)
        ledger = FetchLedger(consume_on_admit=False)
        ledger.admit(0, 0, frames[0])
        ledger.reset(0, discarded_records=len(frames[0]))
        ledger.admit(0, 0, frames[0])  # clean re-fetch after the epoch bump
        ledger.seal(4)
        assert ledger.fetched == 8
        assert ledger.consumed == 4
        assert ledger.deduped == 4
        assert ledger.fetched == ledger.consumed + ledger.deduped
