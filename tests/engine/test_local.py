"""Tests for the deterministic LocalEngine."""

from __future__ import annotations

import pytest

from repro.apps import wordcount
from repro.core.job import JobSpec, MemoryConfig
from repro.core.types import ExecutionMode, JobFailedError, ReducerOutOfMemoryError
from repro.engine.local import LocalEngine
from repro.workloads.text import generate_documents


class TestLocalEngine:
    def test_barrier_wordcount(self, local_engine, small_corpus):
        result = local_engine.run(
            wordcount.make_job(ExecutionMode.BARRIER), small_corpus, num_maps=4
        )
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)

    def test_barrierless_wordcount(self, local_engine, small_corpus):
        result = local_engine.run(
            wordcount.make_job(ExecutionMode.BARRIERLESS), small_corpus, num_maps=4
        )
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)

    def test_deterministic_across_runs(self, local_engine, small_corpus):
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        first = local_engine.run(job, small_corpus, num_maps=4)
        second = local_engine.run(job, small_corpus, num_maps=4)
        assert first.all_output() == second.all_output()

    def test_output_independent_of_map_count(self, local_engine, small_corpus):
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        results = {
            n: local_engine.run(job, small_corpus, num_maps=n).output_as_dict()
            for n in (1, 3, 8)
        }
        assert results[1] == results[3] == results[8]

    def test_counters_populated(self, local_engine, small_corpus):
        result = local_engine.run(
            wordcount.make_job(ExecutionMode.BARRIER), small_corpus, num_maps=5
        )
        assert result.counters.get("map.tasks") == 5
        assert result.counters.get("reduce.tasks") == 4
        assert result.counters.get("map.output_records") > 0
        assert result.counters.get("shuffle.records") == result.counters.get(
            "map.output_records"
        )

    def test_empty_input(self, local_engine):
        result = local_engine.run(
            wordcount.make_job(ExecutionMode.BARRIER), [], num_maps=4
        )
        assert result.all_output() == []

    def test_validates_job(self, local_engine):
        job = wordcount.make_job(ExecutionMode.BARRIER)
        job.num_reducers = 0
        with pytest.raises(Exception):
            local_engine.run(job, [("d", "a b")], num_maps=1)

    def test_heap_sample_hook_receives_reducer_index(self, small_corpus):
        samples: list[tuple[int, int]] = []
        engine = LocalEngine(heap_sample_hook=lambda i, used: samples.append((i, used)))
        engine.run(
            wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=2),
            small_corpus,
            num_maps=3,
        )
        reducer_ids = {i for i, _ in samples}
        assert reducer_ids == {0, 1}
        assert all(used >= 0 for _, used in samples)

    def test_oom_propagates_as_job_failure(self, local_engine):
        docs = generate_documents(40, words_per_doc=60, vocab_size=5000, seed=3)
        job = wordcount.make_job(
            ExecutionMode.BARRIERLESS,
            num_reducers=1,
            memory=MemoryConfig(store="inmemory", heap_limit_bytes=10_000),
        )
        with pytest.raises(ReducerOutOfMemoryError):
            local_engine.run(job, docs, num_maps=4)

    def test_stage_times_monotone(self, local_engine, small_corpus):
        result = local_engine.run(
            wordcount.make_job(ExecutionMode.BARRIER), small_corpus, num_maps=4
        )
        st = result.stage_times
        assert 0.0 <= st.map_start <= st.first_map_done <= st.last_map_done
        assert st.last_map_done <= st.reduce_done <= st.job_done
