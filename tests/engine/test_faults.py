"""Tests for fault injection and Hadoop-style task retry.

These make the paper's fault-tolerance claims executable: injected task
crashes are retried transparently in both execution modes, and the job's
output is unchanged ("fault-tolerance ... handled in the same way as
original Hadoop", §3.1).
"""

from __future__ import annotations

import pytest

from repro.apps import wordcount
from repro.core.types import ExecutionMode
from repro.engine.faults import (
    FaultInjector,
    RetryingTaskRunner,
    TaskAttemptError,
    TaskPermanentlyFailedError,
)
from repro.engine.local import LocalEngine


class TestFaultInjector:
    def test_targeted_first_attempt_failure(self):
        injector = FaultInjector(fail_first_attempt_of=frozenset({"map-1"}))
        with pytest.raises(TaskAttemptError):
            injector.check("map-1", 0)
        injector.check("map-1", 1)  # second attempt succeeds
        injector.check("map-0", 0)  # other tasks unaffected
        assert injector.injected == 1

    def test_probabilistic_failures_deterministic_under_seed(self):
        a = FaultInjector(failure_probability=0.5, seed=3)
        b = FaultInjector(failure_probability=0.5, seed=3)
        outcome_a = [self._crashes(a, f"t{i}") for i in range(20)]
        outcome_b = [self._crashes(b, f"t{i}") for i in range(20)]
        assert outcome_a == outcome_b
        assert any(outcome_a) and not all(outcome_a)

    @staticmethod
    def _crashes(injector: FaultInjector, task_id: str) -> bool:
        try:
            injector.check(task_id, 0)
            return False
        except TaskAttemptError:
            return True

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultInjector(failure_probability=1.0)


class TestRetryingTaskRunner:
    def test_success_first_try(self):
        runner = RetryingTaskRunner()
        assert runner.run("t", lambda: 42) == 42
        assert runner.attempts_made["t"] == 1

    def test_retries_injected_failures(self):
        injector = FaultInjector(fail_first_attempt_of=frozenset({"t"}))
        runner = RetryingTaskRunner(injector=injector)
        assert runner.run("t", lambda: "ok") == "ok"
        assert runner.attempts_made["t"] == 2
        assert runner.retried_tasks == ["t"]

    def test_exhausts_attempt_budget(self):
        class AlwaysFails(FaultInjector):
            def check(self, task_id, attempt):
                raise TaskAttemptError("always")

        runner = RetryingTaskRunner(injector=AlwaysFails(), max_attempts=3)
        with pytest.raises(TaskPermanentlyFailedError) as excinfo:
            runner.run("doomed", lambda: None)
        assert excinfo.value.attempts == 3

    def test_application_errors_not_retried(self):
        runner = RetryingTaskRunner()
        calls = []

        def buggy():
            calls.append(1)
            raise ValueError("deterministic bug")

        with pytest.raises(ValueError):
            runner.run("t", buggy)
        assert len(calls) == 1  # no retry for app bugs

    def test_rejects_bad_max_attempts(self):
        with pytest.raises(ValueError):
            RetryingTaskRunner(max_attempts=0)


class TestEngineFaultTolerance:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_output_survives_map_task_crashes(self, mode, small_corpus):
        injector = FaultInjector(
            fail_first_attempt_of=frozenset({"map-0", "map-2"})
        )
        engine = LocalEngine(fault_injector=injector)
        result = engine.run(wordcount.make_job(mode), small_corpus, num_maps=4)
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)
        assert engine.last_run_attempts["map-0"] == 2
        assert engine.last_run_attempts["map-2"] == 2
        assert engine.last_run_attempts["map-1"] == 1

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_output_survives_reduce_task_crashes(self, mode, small_corpus):
        # A barrier-less reducer retried from scratch rebuilds its
        # partial-result store and still produces the right answer.
        injector = FaultInjector(fail_first_attempt_of=frozenset({"reduce-0"}))
        engine = LocalEngine(fault_injector=injector)
        result = engine.run(
            wordcount.make_job(mode, num_reducers=2), small_corpus, num_maps=3
        )
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)
        assert engine.last_run_attempts["reduce-0"] == 2

    def test_soak_random_failures(self, small_corpus):
        # 20% of attempts crash; with 4 attempts per task the job should
        # still finish with correct output.
        injector = FaultInjector(failure_probability=0.2, seed=7)
        engine = LocalEngine(fault_injector=injector)
        result = engine.run(
            wordcount.make_job(ExecutionMode.BARRIERLESS), small_corpus, num_maps=6
        )
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)
        assert injector.injected > 0

    def test_counters_not_double_counted_on_retry(self, small_corpus):
        injector = FaultInjector(fail_first_attempt_of=frozenset({"map-0"}))
        faulty = LocalEngine(fault_injector=injector)
        clean = LocalEngine()
        job = wordcount.make_job(ExecutionMode.BARRIER)
        faulty_result = faulty.run(job, small_corpus, num_maps=4)
        clean_result = clean.run(job, small_corpus, num_maps=4)
        assert faulty_result.counters.get("map.output_records") == (
            clean_result.counters.get("map.output_records")
        )


class TestThreadedEngineFaultTolerance:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_threaded_retries_map_crashes(self, mode, small_corpus):
        from repro.engine.threaded import ThreadedEngine

        injector = FaultInjector(fail_first_attempt_of=frozenset({"map-1"}))
        engine = ThreadedEngine(map_slots=2, fault_injector=injector)
        result = engine.run(wordcount.make_job(mode), small_corpus, num_maps=4)
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)
        assert injector.injected == 1

    def test_threaded_soak_concurrent_failures(self, small_corpus):
        from repro.engine.threaded import ThreadedEngine

        injector = FaultInjector(failure_probability=0.25, seed=11)
        engine = ThreadedEngine(map_slots=3, fault_injector=injector)
        result = engine.run(
            wordcount.make_job(ExecutionMode.BARRIERLESS), small_corpus, num_maps=6
        )
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)
