"""Differential equivalence: the wire codec must be invisible.

The framed shuffle wire format (repro.dfs.wire) sits on the hot path of
every engine; these tests run the full app matrix with the codec on and
off and assert the data plane is bit-for-bit unaffected — identical
outputs, identical counters (minus the wire's own byte accounting) — and
that the new counters reconcile with the record counts.
"""

from __future__ import annotations

import pytest

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.apps.registry import REGISTRY
from repro.core.types import ExecutionMode
from repro.dfs.wire import (
    BATCHES_COUNTER,
    RAW_BYTES_COUNTER,
    WIRE_BYTES_COUNTER,
    WireConfig,
)
from repro.engine.multiproc import MultiprocessEngine
from repro.engine.streaming import StreamingEngine
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability

APPS = [descriptor.short_name for descriptor in REGISTRY]
MODES = [ExecutionMode.BARRIER, ExecutionMode.BARRIERLESS]

#: Counters allowed to differ between wire on and off: the wire's own
#: accounting (absent with the codec off) and the spill byte totals,
#: whose on-disk representation is codec-dependent by design.
_WIRE_ONLY = {
    RAW_BYTES_COUNTER,
    WIRE_BYTES_COUNTER,
    BATCHES_COUNTER,
    "map.spill_bytes",
    "map.spill_bytes.raw",
    "map.spill_bytes.wire",
}

WIRE_ON = WireConfig()
WIRE_OFF = WireConfig(codec="off")


def _strip_wire(counters: dict) -> dict:
    return {k: v for k, v in counters.items() if k not in _WIRE_ONLY}


def _check_reconciliation(counters, config: WireConfig) -> None:
    """The acceptance inequalities: raw >= wire, batches bound records."""
    raw = counters.get(RAW_BYTES_COUNTER)
    wire = counters.get(WIRE_BYTES_COUNTER)
    batches = counters.get(BATCHES_COUNTER)
    records = counters.get("shuffle.records")
    assert raw >= wire, f"compression grew the payload: {raw} < {wire}"
    assert batches * config.max_batch_records >= records
    if records:
        assert batches > 0 and raw > 0


def _run_threaded(app, mode, wire):
    obs = JobObservability()
    engine = ThreadedEngine(map_slots=2, obs=obs, wire=wire)
    job, pairs = demo_job_and_input(app, mode, records=300, seed=5)
    result = engine.run(job, pairs, num_maps=3)
    return normalized_output(app, result), obs.counters.as_dict()


def _run_multiproc(app, mode, wire):
    obs = JobObservability()
    engine = MultiprocessEngine(processes=2, obs=obs, wire=wire)
    job, pairs = demo_job_and_input(app, mode, records=300, seed=5)
    result = engine.run(job, pairs, num_maps=3)
    return normalized_output(app, result), obs.counters.as_dict()


def _run_streaming(app, wire):
    job, pairs = demo_job_and_input(
        app, ExecutionMode.BARRIERLESS, records=300, seed=5
    )
    engine = StreamingEngine(job, obs=JobObservability(), wire=wire)
    for start in range(0, len(pairs), 100):
        engine.push(pairs[start : start + 100])
    result = engine.close()
    return normalized_output(app, result), engine.obs.counters.as_dict()


@pytest.mark.parametrize("mode", MODES, ids=[mode.value for mode in MODES])
@pytest.mark.parametrize("app", APPS)
def test_threaded_wire_on_off_equivalent(app, mode):
    on_output, on_counters = _run_threaded(app, mode, WIRE_ON)
    off_output, off_counters = _run_threaded(app, mode, WIRE_OFF)
    assert on_output == off_output, f"{app}/{mode.value}: outputs diverged"
    assert _strip_wire(on_counters) == _strip_wire(off_counters)
    for name in (RAW_BYTES_COUNTER, WIRE_BYTES_COUNTER, BATCHES_COUNTER):
        assert name in on_counters
        assert name not in off_counters
    _check_reconciliation(
        JobObservabilityCounters(on_counters), WIRE_ON
    )


@pytest.mark.parametrize("mode", MODES, ids=[mode.value for mode in MODES])
@pytest.mark.parametrize("app", APPS)
def test_multiproc_wire_on_off_equivalent(app, mode):
    on_output, on_counters = _run_multiproc(app, mode, WIRE_ON)
    off_output, off_counters = _run_multiproc(app, mode, WIRE_OFF)
    assert on_output == off_output, f"{app}/{mode.value}: outputs diverged"
    assert _strip_wire(on_counters) == _strip_wire(off_counters)
    _check_reconciliation(
        JobObservabilityCounters(on_counters), WIRE_ON
    )


@pytest.mark.parametrize("app", APPS)
def test_streaming_wire_on_off_equivalent(app):
    on_output, on_counters = _run_streaming(app, WIRE_ON)
    off_output, off_counters = _run_streaming(app, WIRE_OFF)
    assert on_output == off_output, f"{app}: streaming outputs diverged"
    assert _strip_wire(on_counters) == _strip_wire(off_counters)
    _check_reconciliation(
        JobObservabilityCounters(on_counters), WIRE_ON
    )


@pytest.mark.parametrize("app", ["wc", "knn"])
def test_wire_counters_identical_across_engines(app):
    """The wire's byte accounting is engine-invariant, not just present."""
    _, threaded = _run_threaded(app, ExecutionMode.BARRIERLESS, WIRE_ON)
    _, multiproc = _run_multiproc(app, ExecutionMode.BARRIERLESS, WIRE_ON)
    for name in (RAW_BYTES_COUNTER, WIRE_BYTES_COUNTER, BATCHES_COUNTER):
        assert threaded[name] == multiproc[name], name


class JobObservabilityCounters:
    """Dict adapter exposing the tiny counter read API the checks use."""

    def __init__(self, values: dict):
        self._values = values

    def get(self, name: str) -> int:
        return self._values.get(name, 0)
