"""Tests for the threaded pipelined engine (§3.1 structure)."""

from __future__ import annotations

import pytest

from repro.apps import lastfm, wordcount
from repro.core.types import ExecutionMode
from repro.engine.threaded import ThreadedEngine
from repro.workloads.listens import generate_listens, unique_listens_reference


class TestThreadedEngine:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_wordcount_matches_reference(self, mode, small_corpus):
        engine = ThreadedEngine(map_slots=3)
        result = engine.run(wordcount.make_job(mode), small_corpus, num_maps=6)
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_matches_local_engine(self, mode, local_engine, small_corpus):
        job = wordcount.make_job(mode, num_reducers=3)
        threaded = ThreadedEngine(map_slots=2).run(job, small_corpus, num_maps=5)
        local = local_engine.run(job, small_corpus, num_maps=5)
        assert threaded.output_as_dict() == local.output_as_dict()

    def test_more_slots_than_tasks(self, small_corpus):
        engine = ThreadedEngine(map_slots=16)
        result = engine.run(
            wordcount.make_job(ExecutionMode.BARRIERLESS), small_corpus, num_maps=2
        )
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)

    def test_single_slot_serialises_maps(self, small_corpus):
        engine = ThreadedEngine(map_slots=1)
        result = engine.run(
            wordcount.make_job(ExecutionMode.BARRIER), small_corpus, num_maps=4
        )
        assert result.counters.get("map.tasks") == 4

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            ThreadedEngine(map_slots=0)

    def test_task_log_records_stages_barrier(self, small_corpus):
        engine = ThreadedEngine(map_slots=2)
        engine.run(
            wordcount.make_job(ExecutionMode.BARRIER, num_reducers=2),
            small_corpus,
            num_maps=3,
        )
        kinds = {event.kind for event in engine.task_log.events()}
        assert {"map", "shuffle", "sort", "reduce"} <= kinds
        assert len(engine.task_log.events("map")) == 3
        assert len(engine.task_log.events("reduce")) == 2

    def test_task_log_records_stages_barrierless(self, small_corpus):
        engine = ThreadedEngine(map_slots=2)
        engine.run(
            wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=2),
            small_corpus,
            num_maps=3,
        )
        kinds = {event.kind for event in engine.task_log.events()}
        assert "shuffle+reduce" in kinds
        assert "sort" not in kinds  # no sort stage without the barrier

    def test_mapper_error_propagates(self):
        from repro.core.api import Mapper
        from repro.core.job import JobSpec
        from repro.core.api import Reducer

        class FailingMapper(Mapper):
            def map(self, key, value, context):
                raise RuntimeError("boom")

        job = JobSpec(
            name="fails",
            mapper_factory=FailingMapper,
            reducer_factory=Reducer,
            num_reducers=1,
            mode=ExecutionMode.BARRIER,
        )
        with pytest.raises(RuntimeError, match="boom"):
            ThreadedEngine(map_slots=2).run(job, [(0, "x")], num_maps=1)

    def test_pipelined_lastfm(self):
        listens = generate_listens(600, num_users=10, num_tracks=50, seed=5)
        job = lastfm.make_job(ExecutionMode.BARRIERLESS, num_reducers=3)
        result = ThreadedEngine(map_slots=3).run(job, listens, num_maps=6)
        assert result.output_as_dict() == unique_listens_reference(listens)

    def test_stage_times_monotone(self, small_corpus):
        engine = ThreadedEngine(map_slots=2)
        result = engine.run(
            wordcount.make_job(ExecutionMode.BARRIERLESS), small_corpus, num_maps=4
        )
        st = result.stage_times
        assert st.first_map_done <= st.last_map_done <= st.job_done + 1e-9
