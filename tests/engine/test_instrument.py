"""Tests for task-event instrumentation and concurrency series."""

from __future__ import annotations

import pytest

from repro.engine.instrument import (
    TaskEvent,
    TaskLog,
    concurrency_series,
    stage_boundaries,
)


class TestTaskEvent:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TaskEvent("map", "m1", 10.0, 5.0)

    def test_zero_duration_allowed(self):
        TaskEvent("map", "m1", 5.0, 5.0)


class TestTaskLog:
    def test_record_and_filter(self):
        log = TaskLog()
        log.record("map", "m1", 0.0, 2.0)
        log.record("reduce", "r1", 2.0, 5.0)
        assert len(log.events()) == 2
        assert [e.task_id for e in log.events("map")] == ["m1"]

    def test_events_sorted_by_start(self):
        log = TaskLog()
        log.record("map", "late", 5.0, 6.0)
        log.record("map", "early", 1.0, 2.0)
        assert [e.task_id for e in log.events()] == ["early", "late"]

    def test_makespan(self):
        log = TaskLog()
        assert log.makespan() == 0.0
        log.record("map", "m1", 0.0, 7.5)
        log.record("map", "m2", 1.0, 3.0)
        assert log.makespan() == 7.5


class TestConcurrencySeries:
    def test_counts_active_tasks(self):
        events = [
            TaskEvent("map", "a", 0.0, 4.0),
            TaskEvent("map", "b", 2.0, 6.0),
        ]
        times, counts = concurrency_series(events, step=1.0)
        assert times[:7] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert counts[:7] == [1, 1, 2, 2, 1, 1, 0]

    def test_empty_events_yield_empty_series(self):
        times, counts = concurrency_series([], step=1.0)
        assert times == []
        assert counts == []

    def test_empty_events_with_until_still_sample(self):
        times, counts = concurrency_series([], step=1.0, until=2.0)
        assert times == [0.0, 1.0, 2.0]
        assert counts == [0, 0, 0]

    def test_zero_duration_event_counts_at_its_instant(self):
        events = [
            TaskEvent("map", "instant", 2.0, 2.0),
            TaskEvent("map", "long", 0.0, 4.0),
        ]
        times, counts = concurrency_series(events, step=1.0)
        assert counts[times.index(2.0)] == 2
        assert counts[times.index(1.0)] == 1
        assert counts[times.index(3.0)] == 1

    def test_all_zero_duration_events(self):
        events = [TaskEvent("map", "a", 0.0, 0.0)]
        times, counts = concurrency_series(events, step=1.0)
        assert times == [0.0]
        assert counts == [1]

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            concurrency_series([], step=0.0)

    def test_until_extends_horizon(self):
        events = [TaskEvent("map", "a", 0.0, 1.0)]
        times, counts = concurrency_series(events, step=1.0, until=3.0)
        assert times[-1] == 3.0
        assert counts[-1] == 0

    def test_peak_never_exceeds_event_count(self):
        events = [TaskEvent("map", str(i), float(i % 3), float(i % 3) + 2.0) for i in range(30)]
        _, counts = concurrency_series(events, step=0.5)
        assert max(counts) <= 30

    def test_identical_timestamps_all_counted(self):
        # Simulator output routinely has many tasks with bit-identical
        # start/end (virtual-time ties); every one must count.
        events = [TaskEvent("map", str(i), 1.0, 3.0) for i in range(5)]
        times, counts = concurrency_series(events, step=1.0)
        assert counts[times.index(1.0)] == 5
        assert counts[times.index(2.0)] == 5
        assert counts[times.index(3.0)] == 0

    def test_identical_zero_duration_timestamps(self):
        events = [TaskEvent("map", str(i), 2.0, 2.0) for i in range(4)]
        times, counts = concurrency_series(events, step=1.0)
        assert counts[times.index(2.0)] == 4

    def test_until_shorter_than_last_event_truncates(self):
        # A horizon before the last event's end clips sampling at the
        # horizon; the event still counts while it overlaps the window.
        events = [
            TaskEvent("map", "a", 0.0, 10.0),
            TaskEvent("map", "b", 4.0, 10.0),
        ]
        times, counts = concurrency_series(events, step=1.0, until=5.0)
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert counts == [1, 1, 1, 1, 2, 2]

    def test_until_shorter_than_event_start_samples_zeros(self):
        events = [TaskEvent("map", "late", 8.0, 9.0)]
        times, counts = concurrency_series(events, step=1.0, until=3.0)
        assert times[-1] == 3.0
        assert counts == [0, 0, 0, 0]


class TestStageBoundaries:
    def test_min_start_max_end(self):
        events = [
            TaskEvent("map", "a", 1.0, 4.0),
            TaskEvent("map", "b", 0.5, 3.0),
            TaskEvent("reduce", "r", 4.0, 9.0),
        ]
        assert stage_boundaries(events, "map") == (0.5, 4.0)

    def test_missing_kind_raises(self):
        with pytest.raises(ValueError):
            stage_boundaries([], "map")
