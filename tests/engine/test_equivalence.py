"""Cross-cutting equivalence: the paper's correctness claim.

"Since our modifications were idempotent, the correctness and the
completeness of the MapReduce execution is not compromised" (§3.2).
These tests assert that for every application class, the barrier and
barrier-less executions produce identical results, across engines and
memory-management techniques.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import blackscholes, grep, knn, lastfm, sortapp, wordcount
from repro.core.job import MemoryConfig
from repro.core.types import ExecutionMode
from repro.engine.local import LocalEngine
from repro.engine.threaded import ThreadedEngine
from repro.workloads.ints import generate_sort_records
from repro.workloads.listens import generate_listens
from repro.workloads.options import OptionParams, generate_mc_batches
from repro.workloads.points import generate_knn_dataset
from repro.workloads.text import generate_documents

ENGINES = [LocalEngine(), ThreadedEngine(map_slots=2)]


def _outputs(job_factory, pairs, num_maps=4):
    """Run all (engine, mode) combinations, return output dicts."""
    outputs = []
    for engine in ENGINES:
        for mode in ExecutionMode:
            result = engine.run(job_factory(mode), pairs, num_maps=num_maps)
            outputs.append(result.output_as_dict())
    return outputs


class TestModeEquivalence:
    def test_grep(self, small_corpus):
        outputs = _outputs(lambda m: grep.make_job(m, "w00001"), small_corpus)
        assert all(o == outputs[0] for o in outputs)
        assert outputs[0] == grep.reference_output(small_corpus, "w00001")

    def test_wordcount(self, small_corpus):
        outputs = _outputs(wordcount.make_job, small_corpus)
        assert all(o == outputs[0] for o in outputs)
        assert outputs[0] == wordcount.reference_output(small_corpus)

    def test_sort(self):
        records = generate_sort_records(400, key_range=800, seed=21)
        expected = sortapp.reference_output(records)
        for engine in ENGINES:
            for mode in ExecutionMode:
                result = engine.run(sortapp.make_job(mode), records, num_maps=4)
                out = [(r.key, r.value) for r in result.all_output()]
                assert out == expected, (engine, mode)

    def test_lastfm(self):
        listens = generate_listens(800, num_users=15, num_tracks=60, seed=9)
        outputs = _outputs(lastfm.make_job, listens)
        assert all(o == outputs[0] for o in outputs)

    def test_knn_distances_match(self):
        experimental, training = generate_knn_dataset(6, 150, seed=13)
        pairs = knn.training_pairs(training)
        per_mode = {}
        for mode in ExecutionMode:
            job = knn.make_job(mode, experimental, k=4, num_reducers=2)
            result = LocalEngine().run(job, pairs, num_maps=3)
            got: dict = {}
            for record in result.all_output():
                got.setdefault(record.key, []).append(record.value[1])
            per_mode[mode] = {k: sorted(v) for k, v in got.items()}
        assert per_mode[ExecutionMode.BARRIER] == per_mode[ExecutionMode.BARRIERLESS]

    def test_blackscholes_statistics_identical(self):
        batches = generate_mc_batches(3, 500, seed=17)
        results = {}
        for mode in ExecutionMode:
            out = LocalEngine().run(
                blackscholes.make_job(mode), batches, num_maps=3
            ).output_as_dict()
            results[mode] = out
        barrier = results[ExecutionMode.BARRIER]
        barrierless = results[ExecutionMode.BARRIERLESS]
        assert barrier["count"] == barrierless["count"]
        assert barrier["mean"] == pytest.approx(barrierless["mean"], rel=1e-12)
        assert barrier["stddev"] == pytest.approx(barrierless["stddev"], rel=1e-12)


class TestMemoryTechniqueEquivalence:
    """All three §5 stores must produce identical WordCount output."""

    @pytest.mark.parametrize(
        "memory",
        [
            MemoryConfig(store="inmemory"),
            MemoryConfig(store="spillmerge", spill_threshold_bytes=2048),
            MemoryConfig(store="kvstore", kv_cache_bytes=2048),
        ],
        ids=["inmemory", "spillmerge", "kvstore"],
    )
    def test_wordcount_output_identical(self, memory, small_corpus, local_engine):
        job = wordcount.make_job(
            ExecutionMode.BARRIERLESS, num_reducers=2, memory=memory
        )
        result = local_engine.run(job, small_corpus, num_maps=4)
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)

    def test_lastfm_spillmerge(self, local_engine):
        listens = generate_listens(500, num_users=8, num_tracks=40, seed=3)
        job = lastfm.make_job(
            ExecutionMode.BARRIERLESS,
            num_reducers=2,
            memory=MemoryConfig(store="spillmerge", spill_threshold_bytes=1024),
        )
        result = local_engine.run(job, listens, num_maps=5)
        from repro.workloads.listens import unique_listens_reference

        assert result.output_as_dict() == unique_listens_reference(listens)


@settings(max_examples=25, deadline=None)
@given(
    docs=st.lists(
        st.text(alphabet="abcde ", min_size=0, max_size=40), max_size=15
    ),
    num_maps=st.integers(min_value=1, max_value=6),
    num_reducers=st.integers(min_value=1, max_value=4),
)
def test_property_wordcount_mode_equivalence(docs, num_maps, num_reducers):
    """Barrier and barrier-less WordCount agree on arbitrary corpora."""
    pairs = [(i, doc) for i, doc in enumerate(docs)]
    engine = LocalEngine()
    barrier = engine.run(
        wordcount.make_job(ExecutionMode.BARRIER, num_reducers=num_reducers),
        pairs,
        num_maps=num_maps,
    )
    barrierless = engine.run(
        wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=num_reducers),
        pairs,
        num_maps=num_maps,
    )
    assert barrier.output_as_dict() == barrierless.output_as_dict()
    assert barrier.output_as_dict() == wordcount.reference_output(pairs)


@settings(max_examples=15, deadline=None)
@given(
    keys=st.lists(st.integers(0, 999_999), max_size=60),
    num_reducers=st.integers(min_value=1, max_value=4),
)
def test_property_sort_total_order(keys, num_reducers):
    """Barrier-less sort yields a totally ordered output for any input."""
    records = [(k, k) for k in keys]
    job = sortapp.make_job(ExecutionMode.BARRIERLESS, num_reducers=num_reducers)
    result = LocalEngine().run(job, records, num_maps=3)
    out_keys = [r.key for r in result.all_output()]
    assert out_keys == sorted(keys)
