"""Differential matrix for checkpointed reducer recovery (resume vs refold).

The contract: with checkpointing on, a reduce attempt killed mid-fold
resumes from its last valid snapshot and replays only the un-consumed
tail — and the output stays byte-identical to a fault-free run, in both
the threaded and streaming engines, for every bundled application.  The
suite also pins the fail-closed paths: a snapshot whose source mapper
restarted (stale epoch) and a torn snapshot must both fall back to a
full refold, never resume from invalid state, and the four-way record
accounting (``restored + replayed + refolded + live``) must reconcile.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.demo import APP_CHOICES, demo_job_and_input, normalized_output
from repro.core.types import ExecutionMode
from repro.dfs.wire import WireConfig
from repro.engine.base import reducer_is_checkpointable, reducer_is_store_backed
from repro.engine.recovery import (
    BackoffPolicy,
    FetchFaultInjector,
    RecoveryConfig,
)
from repro.engine.streaming import StreamingEngine
from repro.engine.threaded import ThreadedEngine
from repro.memory.checkpoint import CheckpointPolicy, write_checkpoint
from repro.obs import JobObservability

RECORDS = 300
NUM_MAPS = 3
NUM_REDUCERS = 2

#: Small wire batches: threaded snapshots cut at batch boundaries, so a
#: 16-record batch keeps the record-count trigger meaningful at this
#: input size (default 256-record batches would never checkpoint).
WIRE = WireConfig(max_batch_records=16)

#: Kill reducer 0 late enough that snapshots exist before the crash.
CRASH_AFTER = 100

#: Apps whose reducer both folds into a store and opts into snapshots.
CHECKPOINTABLE = ("knn", "pp", "sort", "wc")


def _recovery(checkpoint_dir=None, *, every_records=20):
    return RecoveryConfig(
        fetch_timeout_s=0.02,
        straggler_threshold_s=0.02,
        backoff=BackoffPolicy(base_s=0.0005, cap_s=0.005),
        checkpoint=CheckpointPolicy(every_records=every_records),
        checkpoint_dir=checkpoint_dir,
    )


#: Same fast-failing tuning with checkpointing off: the refold baseline.
FAST = RecoveryConfig(
    fetch_timeout_s=0.02,
    straggler_threshold_s=0.02,
    backoff=BackoffPolicy(base_s=0.0005, cap_s=0.005),
)

_baselines: dict[str, object] = {}


def _demo(app: str):
    return demo_job_and_input(
        app, ExecutionMode.BARRIERLESS, records=RECORDS,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS,
    )


def _baseline(app: str):
    """Fault-free normalized output, computed once per app."""
    if app not in _baselines:
        job, pairs = _demo(app)
        result = ThreadedEngine(map_slots=2).run(job, pairs, num_maps=NUM_MAPS)
        _baselines[app] = normalized_output(app, result)
    return _baselines[app]


def _run_threaded(app, recovery, *, crash_after=CRASH_AFTER, obs=None):
    job, pairs = _demo(app)
    engine = ThreadedEngine(
        map_slots=2,
        fetch_injector=FetchFaultInjector(crash_reducer_after={0: crash_after}),
        recovery=recovery,
        wire=WIRE,
        obs=obs or JobObservability(),
    )
    return engine.run(job, pairs, num_maps=NUM_MAPS)


def _run_streaming(app, recovery, *, crash_after=CRASH_AFTER, obs=None, seed=0):
    job, pairs = _demo(app)
    engine = StreamingEngine(
        job,
        obs=obs or JobObservability(),
        fault_injector=FetchFaultInjector(
            crash_reducer_after={0: crash_after}, seed=seed
        ),
        recovery=recovery,
        wire=WIRE,
    )
    step = max(1, len(pairs) // 10)
    for start in range(0, len(pairs), step):
        engine.push(pairs[start : start + step])
    return engine.close()


def _bucket_totals(obs):
    return {
        name: obs.counters.get(f"reduce.{name}_records")
        for name in ("restored", "replayed", "refolded", "live")
    }


# ---------------------------------------------------------------------------
# the matrix: every app x both engines, reducer killed mid-fold
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app", APP_CHOICES)
def test_threaded_kill_resume_output_identical(app):
    result = _run_threaded(app, _recovery())
    assert normalized_output(app, result) == _baseline(app)


@pytest.mark.parametrize("app", APP_CHOICES)
def test_streaming_kill_resume_output_identical(app):
    result = _run_streaming(app, _recovery(every_records=15), crash_after=40)
    assert normalized_output(app, result) == _baseline(app)


def test_checkpointable_gate_matches_app_list():
    # The engines only checkpoint store-backed reducers that opted in;
    # pin which bundled apps that is so the matrix above stays honest.
    for app in APP_CHOICES:
        job, _pairs = _demo(app)
        eligible = reducer_is_store_backed(job) and reducer_is_checkpointable(job)
        assert eligible == (app in CHECKPOINTABLE), app


# ---------------------------------------------------------------------------
# resume does strictly less refolding than the refold baseline
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app", CHECKPOINTABLE)
def test_threaded_resume_beats_refold(app):
    ckpt_obs = JobObservability()
    result = _run_threaded(app, _recovery(), obs=ckpt_obs)
    assert normalized_output(app, result) == _baseline(app)

    refold_obs = JobObservability()
    result = _run_threaded(app, FAST, obs=refold_obs)
    assert normalized_output(app, result) == _baseline(app)

    assert ckpt_obs.counters.get("reduce.checkpoint.writes") >= 1
    assert ckpt_obs.counters.get("reduce.checkpoint.restores") >= 1
    assert ckpt_obs.counters.get("reduce.restored_records") > 0
    # The headline claim: resuming replays strictly fewer records than
    # the refold baseline re-folds for the same injected crash.
    assert (
        ckpt_obs.counters.get("reduce.replayed_records")
        < refold_obs.counters.get("reduce.refolded_records")
    )
    # Four-way accounting: the checkpointed run classifies at least as
    # many records (it covers every checkpoint-active reducer, while the
    # refold baseline only classifies the crashed one's partition).
    assert sum(_bucket_totals(ckpt_obs).values()) >= sum(
        _bucket_totals(refold_obs).values()
    )


def test_threaded_sort_accounting_covers_partition():
    # sort maps records 1:1, so the four buckets must sum to the input.
    obs = JobObservability()
    _run_threaded("sort", _recovery(), obs=obs)
    assert sum(_bucket_totals(obs).values()) == RECORDS


@pytest.mark.parametrize("app", ("grep", "ga", "bs"))
def test_non_checkpointable_apps_never_snapshot(app):
    # Identity/windowed reducers emit during the fold; a snapshot of
    # their store could not be resumed without re-emitting, so the
    # engine must not write one even when the policy asks for it.
    obs = JobObservability()
    result = _run_threaded(app, _recovery(), obs=obs)
    assert normalized_output(app, result) == _baseline(app)
    assert obs.counters.get("reduce.checkpoint.writes") == 0


def test_streaming_resume_beats_refold():
    ckpt_obs = JobObservability()
    result = _run_streaming(
        "wc", _recovery(every_records=15), crash_after=40, obs=ckpt_obs
    )
    assert normalized_output("wc", result) == _baseline("wc")

    refold_obs = JobObservability()
    result = _run_streaming("wc", FAST, crash_after=40, obs=refold_obs)
    assert normalized_output("wc", result) == _baseline("wc")

    assert ckpt_obs.counters.get("reduce.checkpoint.restores") >= 1
    assert ckpt_obs.counters.get("reduce.restored_records") >= 15
    assert (
        ckpt_obs.counters.get("reduce.replayed_records")
        < refold_obs.counters.get("reduce.refolded_records")
    )


def test_streaming_kill_resume_deterministic():
    # Same seed, same pushes: the resumed run must land on identical
    # output and identical record classification both times.
    outputs, buckets = [], []
    for _attempt in range(2):
        obs = JobObservability()
        result = _run_streaming(
            "wc", _recovery(every_records=15), crash_after=40, obs=obs, seed=7
        )
        outputs.append(normalized_output("wc", result))
        buckets.append(_bucket_totals(obs))
    assert outputs[0] == outputs[1] == _baseline("wc")
    assert buckets[0] == buckets[1]


# ---------------------------------------------------------------------------
# fail-closed paths: stale epochs and torn snapshots refold, never resume
# ---------------------------------------------------------------------------


def _poisoned_checkpoint(tmp_path, meta):
    # A snapshot whose entries would visibly corrupt sort's output if a
    # restart ever restored it.
    directory = os.path.join(str(tmp_path), "reduce-0")
    write_checkpoint(directory, [("zzz-poison", 10**9)], meta=meta)
    return directory


def test_stale_epoch_invalidates_whole_checkpoint(tmp_path):
    # Epoch 99 can never match a fresh service (epochs start at 0): the
    # engine must discard the snapshot and refold, not resume from it.
    _poisoned_checkpoint(
        tmp_path, meta={"progress": {0: (5, 99, 50)}}
    )
    obs = JobObservability()
    job, pairs = _demo("sort")
    engine = ThreadedEngine(
        map_slots=2,
        recovery=_recovery(checkpoint_dir=str(tmp_path)),
        wire=WIRE,
        obs=obs,
    )
    result = engine.run(job, pairs, num_maps=NUM_MAPS)
    assert normalized_output("sort", result) == _baseline("sort")
    assert obs.counters.get("reduce.checkpoint.stale") >= 1
    assert obs.counters.get("reduce.checkpoint.restores") == 0
    assert obs.counters.get("reduce.restored_records") == 0


def test_torn_checkpoint_falls_back_to_refold(tmp_path):
    directory = _poisoned_checkpoint(
        tmp_path, meta={"progress": {0: (5, 0, 50)}}
    )
    # Tear the tail off: the CRC/trailer pass must reject the file.
    path = os.path.join(directory, "checkpoint.wire")
    with open(path, "r+b") as fh:
        fh.truncate(os.path.getsize(path) - 4)
    obs = JobObservability()
    job, pairs = _demo("sort")
    engine = ThreadedEngine(
        map_slots=2,
        recovery=_recovery(checkpoint_dir=str(tmp_path)),
        wire=WIRE,
        obs=obs,
    )
    result = engine.run(job, pairs, num_maps=NUM_MAPS)
    assert normalized_output("sort", result) == _baseline("sort")
    assert obs.counters.get("reduce.checkpoint.invalid") >= 1
    assert obs.counters.get("reduce.checkpoint.restores") == 0
