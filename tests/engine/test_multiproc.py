"""Tests for the multiprocessing engine."""

from __future__ import annotations

import pytest

from repro.apps import sortapp, wordcount
from repro.core.types import ExecutionMode
from repro.engine.multiproc import MultiprocessEngine
from repro.workloads.ints import generate_sort_records


class TestMultiprocessEngine:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_wordcount_matches_reference(self, mode, small_corpus):
        engine = MultiprocessEngine(processes=2)
        result = engine.run(wordcount.make_job(mode), small_corpus, num_maps=4)
        assert result.output_as_dict() == wordcount.reference_output(small_corpus)

    def test_matches_local_engine(self, local_engine, small_corpus):
        job = wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=2)
        multi = MultiprocessEngine(processes=2).run(job, small_corpus, num_maps=3)
        local = local_engine.run(job, small_corpus, num_maps=3)
        assert multi.output_as_dict() == local.output_as_dict()

    def test_sort_total_order(self):
        records = generate_sort_records(300, key_range=500, seed=11)
        job = sortapp.make_job(ExecutionMode.BARRIERLESS, num_reducers=3)
        result = MultiprocessEngine(processes=2).run(job, records, num_maps=4)
        out = [(r.key, r.value) for r in result.all_output()]
        assert out == sortapp.reference_output(records)

    def test_counters_merged_across_processes(self, small_corpus):
        engine = MultiprocessEngine(processes=2)
        result = engine.run(
            wordcount.make_job(ExecutionMode.BARRIER), small_corpus, num_maps=4
        )
        assert result.counters.get("map.tasks") == 4
        assert result.counters.get("map.output_records") > 0

    def test_rejects_bad_processes(self):
        with pytest.raises(ValueError):
            MultiprocessEngine(processes=0)
