"""Tests for the pairwise document-similarity pipeline (paper ref [12])."""

from __future__ import annotations

import pytest

from repro.apps.similarity import (
    PairGeneratorMapper,
    PostingsMapper,
    make_index_job,
    make_similarity_job,
    merge_postings,
    pairwise_similarity,
    reference_similarity,
)
from repro.core.api import MapContext
from repro.core.job import MemoryConfig
from repro.core.types import ExecutionMode
from repro.engine.local import LocalEngine
from repro.workloads.text import generate_documents


class TestPostingsMapper:
    def test_emits_term_frequencies(self):
        ctx = MapContext()
        PostingsMapper().map("d1", "apple banana apple", ctx)
        emitted = {(r.key, r.value) for r in ctx.drain()}
        assert emitted == {("apple", ("d1", 2)), ("banana", ("d1", 1))}


class TestPairGeneratorMapper:
    def test_emits_ordered_pairs(self):
        ctx = MapContext()
        PairGeneratorMapper().map("term", (("d2", 3), ("d1", 2)), ctx)
        [record] = ctx.drain()
        assert record.key == ("d1", "d2")
        assert record.value == 6

    def test_no_pairs_for_singleton_posting(self):
        ctx = MapContext()
        PairGeneratorMapper().map("term", (("d1", 5),), ctx)
        assert ctx.drain() == []


class TestMergePostings:
    def test_concatenates_sorted(self):
        merged = merge_postings((("d2", 1),), (("d1", 3),))
        assert merged == (("d1", 3), ("d2", 1))


class TestPipeline:
    @pytest.fixture
    def docs(self):
        return [
            ("docA", "cat dog cat"),
            ("docB", "dog mouse"),
            ("docC", "cat mouse mouse"),
            ("docD", "zebra"),
        ]

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_matches_reference(self, mode, docs):
        got = pairwise_similarity(docs, LocalEngine(), mode, num_reducers=2)
        assert got == reference_similarity(docs)

    def test_hand_checked_values(self, docs):
        got = pairwise_similarity(
            docs, LocalEngine(), ExecutionMode.BARRIERLESS
        )
        # docA·docB share "dog": 1*1 = 1.  docA·docC share "cat": 2*1 = 2.
        # docB·docC share "mouse": 1*2 = 2.  docD shares nothing.
        assert got[("docA", "docB")] == 1
        assert got[("docA", "docC")] == 2
        assert got[("docB", "docC")] == 2
        assert not any("docD" in pair for pair in got)

    def test_synthetic_corpus_mode_equivalence(self):
        docs = generate_documents(12, words_per_doc=15, vocab_size=30, seed=8)
        barrier = pairwise_similarity(docs, LocalEngine(), ExecutionMode.BARRIER)
        barrierless = pairwise_similarity(
            docs, LocalEngine(), ExecutionMode.BARRIERLESS
        )
        assert barrier == barrierless == reference_similarity(docs)

    def test_spillmerge_index_job(self, docs):
        job = make_index_job(
            ExecutionMode.BARRIERLESS,
            num_reducers=2,
            memory=MemoryConfig(store="spillmerge", spill_threshold_bytes=512),
        )
        result = LocalEngine().run(job, docs, num_maps=2)
        postings = result.output_as_dict()
        assert postings["cat"] == (("docA", 2), ("docC", 1))

    def test_similarity_symmetric_in_input_order(self, docs):
        forward = pairwise_similarity(docs, LocalEngine(), ExecutionMode.BARRIERLESS)
        backward = pairwise_similarity(
            list(reversed(docs)), LocalEngine(), ExecutionMode.BARRIERLESS
        )
        assert forward == backward
