"""Tests for the Sort application (Sorting class)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sortapp import RangePartitioner, make_job, reference_output
from repro.core.job import MemoryConfig
from repro.core.types import ExecutionMode
from repro.engine.local import LocalEngine
from repro.workloads.ints import generate_sort_records, is_sorted_output


class TestRangePartitioner:
    def test_ordering_across_partitions(self):
        part = RangePartitioner(1000)
        assert part(0, 4) == 0
        assert part(999, 4) == 3
        assert part(250, 4) <= part(500, 4) <= part(750, 4)

    def test_out_of_range_clamps(self):
        part = RangePartitioner(100)
        assert part(-5, 4) == 0
        assert part(1_000_000, 4) == 3

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            RangePartitioner(0)

    @given(st.integers(0, 999), st.integers(1, 16))
    def test_property_monotone(self, key, n):
        part = RangePartitioner(1000)
        assert part(key, n) <= part(min(999, key + 1), n)


class TestSortJob:
    def test_barrier_sort(self, local_engine):
        records = generate_sort_records(200, key_range=500, seed=1)
        result = local_engine.run(
            make_job(ExecutionMode.BARRIER, num_reducers=4), records, num_maps=4
        )
        assert [(r.key, r.value) for r in result.all_output()] == reference_output(
            records
        )

    def test_barrierless_sort(self, local_engine):
        records = generate_sort_records(200, key_range=500, seed=2)
        result = local_engine.run(
            make_job(ExecutionMode.BARRIERLESS, num_reducers=4), records, num_maps=4
        )
        out = [(r.key, r.value) for r in result.all_output()]
        assert out == reference_output(records)
        assert is_sorted_output(out)

    def test_duplicates_preserved(self, local_engine):
        records = [(7, 7)] * 5 + [(3, 3)] * 2
        result = local_engine.run(
            make_job(ExecutionMode.BARRIERLESS, num_reducers=2), records, num_maps=2
        )
        keys = [r.key for r in result.all_output()]
        assert keys == [3, 3, 7, 7, 7, 7, 7]

    def test_duplicates_use_counts_not_copies(self, local_engine):
        # §6.1.1: duplicate values must not consume extra memory.  A store
        # holding counts keeps one entry however many duplicates arrive.
        from repro.apps.sortapp import BarrierlessSortReducer
        from repro.core.api import ReduceContext, singleton_groups
        from repro.core.types import Record
        from repro.memory.store import TreeMapStore

        reducer = BarrierlessSortReducer()
        store = TreeMapStore()
        reducer.attach_store(store)
        ctx = ReduceContext(singleton_groups([Record(5, 5)] * 100))
        reducer.run(ctx)
        assert len(store) == 1
        assert len(ctx.drain()) == 100

    def test_spillmerge_sort(self, local_engine):
        records = generate_sort_records(300, key_range=200, seed=3)
        job = make_job(
            ExecutionMode.BARRIERLESS,
            num_reducers=2,
            memory=MemoryConfig(store="spillmerge", spill_threshold_bytes=1024),
        )
        result = local_engine.run(job, records, num_maps=4)
        out = [(r.key, r.value) for r in result.all_output()]
        assert out == reference_output(records)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 99_999), max_size=80))
def test_property_both_modes_agree(keys):
    records = [(k, k) for k in keys]
    engine = LocalEngine()
    results = {}
    for mode in ExecutionMode:
        result = engine.run(make_job(mode, num_reducers=3), records, num_maps=3)
        results[mode] = [(r.key, r.value) for r in result.all_output()]
    assert results[ExecutionMode.BARRIER] == results[ExecutionMode.BARRIERLESS]
    assert results[ExecutionMode.BARRIER] == sorted(((k, k) for k in keys))
