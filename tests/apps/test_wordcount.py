"""Tests for WordCount (Aggregation class, the paper's running example)."""

from __future__ import annotations

import pytest

from repro.apps.wordcount import (
    BarrierlessIntSumReducer,
    IntSumReducer,
    TokenizerMapper,
    make_job,
    merge_counts,
    reference_output,
)
from repro.core.api import MapContext, ReduceContext, singleton_groups
from repro.core.job import MemoryConfig
from repro.core.types import ExecutionMode, Record
from repro.memory.store import TreeMapStore


class TestTokenizerMapper:
    def test_tokenises_on_whitespace(self):
        ctx = MapContext()
        TokenizerMapper().map("doc", "the  quick\tbrown\nfox", ctx)
        assert [r.key for r in ctx.drain()] == ["the", "quick", "brown", "fox"]

    def test_empty_document(self):
        ctx = MapContext()
        TokenizerMapper().map("doc", "", ctx)
        assert ctx.drain() == []


class TestIntSumReducer:
    def test_algorithm_1_semantics(self):
        ctx = ReduceContext([("word", [1, 1, 1])])
        IntSumReducer().run(ctx)
        assert ctx.drain() == [Record("word", 3)]


class TestBarrierlessIntSumReducer:
    def test_algorithm_2_semantics(self):
        reducer = BarrierlessIntSumReducer()
        reducer.attach_store(TreeMapStore())
        records = [Record("b", 1), Record("a", 1), Record("b", 1)]
        ctx = ReduceContext(singleton_groups(records))
        reducer.run(ctx)
        # Output swept from the TreeMap is in key order (Algorithm 2's
        # final loop over the TreeMap).
        assert ctx.drain() == [Record("a", 1), Record("b", 2)]

    def test_merge_counts_is_addition(self):
        assert merge_counts(3, 4) == 7


class TestWordCountJob:
    def test_reference_output(self):
        pairs = [(0, "a b a"), (1, "b")]
        assert reference_output(pairs) == {"a": 2, "b": 2}

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_end_to_end(self, mode, local_engine, small_corpus):
        result = local_engine.run(make_job(mode), small_corpus, num_maps=5)
        assert result.output_as_dict() == reference_output(small_corpus)

    def test_job_carries_merge_fn_for_spilling(self):
        job = make_job(
            ExecutionMode.BARRIERLESS,
            memory=MemoryConfig(store="spillmerge", spill_threshold_bytes=1024),
        )
        job.validate()
        assert job.merge_fn(2, 3) == 5

    def test_heavy_skew(self, local_engine):
        # One very hot key (Zipf head) plus a long tail.
        pairs = [(i, "hot " * 50 + f"tail{i}") for i in range(10)]
        result = local_engine.run(
            make_job(ExecutionMode.BARRIERLESS, num_reducers=3), pairs, num_maps=3
        )
        out = result.output_as_dict()
        assert out["hot"] == 500
        assert sum(1 for k in out if k.startswith("tail")) == 10
