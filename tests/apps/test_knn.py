"""Tests for k-Nearest Neighbors (Selection class)."""

from __future__ import annotations

import pytest

from repro.apps.knn import (
    KnnBarrierReducer,
    KnnBarrierlessReducer,
    KnnMapper,
    make_job,
    merge_topk,
    training_pairs,
)
from repro.core.api import MapContext, ReduceContext, singleton_groups
from repro.core.types import ExecutionMode, Record
from repro.engine.local import LocalEngine
from repro.memory.store import TreeMapStore
from repro.workloads.points import brute_force_knn, generate_knn_dataset


class TestKnnMapper:
    def test_emits_distance_per_experimental_value(self):
        ctx = MapContext()
        KnnMapper([100, 200]).map(0, 150, ctx)
        emitted = {(r.key, r.value) for r in ctx.drain()}
        assert emitted == {(100, (150, 50)), (200, (150, 50))}


class TestReducers:
    def test_barrier_reducer_sorts_and_truncates(self):
        ctx = ReduceContext([(7, [(10, 3), (20, 13), (8, 1)])])
        KnnBarrierReducer(k=2).run(ctx)
        assert [r.value for r in ctx.drain()] == [(8, 1), (10, 3)]

    def test_barrierless_running_topk(self):
        reducer = KnnBarrierlessReducer(k=2)
        reducer.attach_store(TreeMapStore())
        records = [Record(7, (10, 3)), Record(7, (20, 13)), Record(7, (8, 1))]
        ctx = ReduceContext(singleton_groups(records))
        reducer.run(ctx)
        assert [r.value for r in ctx.drain()] == [(8, 1), (10, 3)]

    def test_ties_keep_arrival_order(self):
        reducer = KnnBarrierlessReducer(k=2)
        reducer.attach_store(TreeMapStore())
        records = [Record(0, ("first", 5)), Record(0, ("second", 5))]
        ctx = ReduceContext(singleton_groups(records))
        reducer.run(ctx)
        assert [r.value[0] for r in ctx.drain()] == ["first", "second"]

    def test_merge_topk(self):
        a = [(1, 1), (2, 5)]
        b = [(3, 2), (4, 9)]
        assert merge_topk(a, b, k=3) == [(1, 1), (3, 2), (2, 5)]


class TestEndToEnd:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_matches_brute_force(self, mode):
        experimental, training = generate_knn_dataset(5, 120, seed=4)
        job = make_job(mode, experimental, k=3, num_reducers=2)
        result = LocalEngine().run(job, training_pairs(training), num_maps=3)
        reference = brute_force_knn(experimental, training, 3)
        got: dict[int, list] = {}
        for record in result.all_output():
            got.setdefault(record.key, []).append(record.value)
        assert set(got) == set(reference)
        for key in reference:
            assert sorted(d for _, d in got[key]) == sorted(
                d for _, d in reference[key]
            ), key

    def test_every_experimental_value_gets_k_neighbors(self):
        experimental, training = generate_knn_dataset(8, 60, seed=5)
        job = make_job(ExecutionMode.BARRIERLESS, experimental, k=4, num_reducers=3)
        result = LocalEngine().run(job, training_pairs(training), num_maps=4)
        counts: dict[int, int] = {}
        for record in result.all_output():
            counts[record.key] = counts.get(record.key, 0) + 1
        assert counts == {value: 4 for value in experimental}

    def test_fewer_training_values_than_k(self):
        job = make_job(ExecutionMode.BARRIERLESS, [500], k=10, num_reducers=1)
        result = LocalEngine().run(job, training_pairs([100, 900]), num_maps=1)
        assert len(result.all_output()) == 2


class TestSecondarySort:
    def test_secondary_sort_matches_in_reducer_sort(self):
        experimental, training = generate_knn_dataset(6, 100, seed=9)
        pairs = training_pairs(training)
        engine = LocalEngine()
        with_ss = engine.run(
            make_job(ExecutionMode.BARRIER, experimental, k=4, secondary_sort=True),
            pairs, num_maps=3,
        )
        without_ss = engine.run(
            make_job(ExecutionMode.BARRIER, experimental, k=4, secondary_sort=False),
            pairs, num_maps=3,
        )
        def distances(result):
            got = {}
            for record in result.all_output():
                got.setdefault(record.key, []).append(record.value[1])
            return {k: sorted(v) for k, v in got.items()}
        assert distances(with_ss) == distances(without_ss)

    def test_framework_delivers_distance_ordered_groups(self):
        from repro.apps.knn import KnnSecondarySortReducer
        # With secondary sort the reducer takes the FIRST k values, so a
        # correct result proves the framework ordered the group.
        experimental, training = generate_knn_dataset(4, 80, seed=10)
        job = make_job(ExecutionMode.BARRIER, experimental, k=3)
        assert isinstance(job.reducer_factory(), KnnSecondarySortReducer)
        assert job.value_sort_key is not None
        result = LocalEngine().run(job, training_pairs(training), num_maps=2)
        reference = brute_force_knn(experimental, training, 3)
        for record in result.all_output():
            ref_dists = [d for _, d in reference[record.key]]
            assert record.value[1] <= max(ref_dists)

    def test_barrierless_ignores_secondary_sort_flag(self):
        job = make_job(ExecutionMode.BARRIERLESS, [5], k=2, secondary_sort=True)
        assert job.value_sort_key is None
