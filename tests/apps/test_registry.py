"""Tests for the application registry."""

from __future__ import annotations

import pytest

from repro.apps.registry import REGISTRY, by_short_name, evaluated_apps
from repro.core.types import ExecutionMode, ReduceClass


class TestRegistry:
    def test_seven_applications(self):
        assert len(REGISTRY) == 7

    def test_covers_all_reduce_classes(self):
        classes = {descriptor.reduce_class for descriptor in REGISTRY}
        assert classes == set(ReduceClass)

    def test_short_names_unique(self):
        names = [d.short_name for d in REGISTRY]
        assert len(names) == len(set(names))

    def test_by_short_name(self):
        assert by_short_name("wc").name == "WordCount"
        with pytest.raises(KeyError):
            by_short_name("nope")

    def test_evaluated_apps_exclude_identity(self):
        evaluated = evaluated_apps()
        assert len(evaluated) == 6
        assert all(d.reduce_class is not ReduceClass.IDENTITY for d in evaluated)

    def test_flag_only_conversions(self):
        # GA and Black-Scholes need only the mode flag (Table 2: 0%);
        # grep's identity reduce is likewise unchanged.
        flag_only = {d.short_name for d in REGISTRY if d.flag_only_conversion}
        assert flag_only == {"grep", "ga", "bs"}

    def test_descriptor_classes_are_importable_types(self):
        for descriptor in REGISTRY:
            for cls in descriptor.original + descriptor.barrierless:
                assert isinstance(cls, type)
