"""Tests for the SMT translation-table pipeline (paper refs [6, 11])."""

from __future__ import annotations

import pytest

from repro.apps.translation import (
    AlignedPairMapper,
    BarrierlessTranslationTableReducer,
    build_translation_table,
    make_normalise_job,
    make_pair_count_job,
    merge_histograms,
    reference_table,
)
from repro.core.api import MapContext
from repro.core.job import MemoryConfig
from repro.core.pipeline import PipelineStage, run_pipeline
from repro.core.types import ExecutionMode
from repro.engine.local import LocalEngine
from repro.workloads.bitext import dominant_translation, generate_bitext


TINY = [
    (0, (("s0", "s1"), ("t0", "t1"), ((0, 0), (1, 1)))),
    (1, (("s0", "s2"), ("t0", "t9"), ((0, 0), (1, 1)))),
    (2, (("s0",), ("tX",), ((0, 0),))),
]


class TestMapper:
    def test_emits_aligned_pairs_only(self):
        ctx = MapContext()
        AlignedPairMapper().map(
            0, (("a", "b"), ("x", "y"), ((0, 1),)), ctx
        )
        assert [(r.key, r.value) for r in ctx.drain()] == [(("a", "y"), 1)]


class TestMergeHistograms:
    def test_adds_counts(self):
        merged = merge_histograms((("x", 2),), (("x", 1), ("y", 5)))
        assert dict(merged) == {"x": 3, "y": 5}


class TestPipeline:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_matches_reference(self, mode):
        table = build_translation_table(TINY, LocalEngine(), mode)
        assert table == reference_table(TINY)

    def test_probabilities_sum_to_one(self):
        corpus = generate_bitext(60, seed=1)
        table = build_translation_table(
            corpus, LocalEngine(), ExecutionMode.BARRIERLESS
        )
        for src, distribution in table.items():
            total = sum(prob for _, prob in distribution)
            assert total == pytest.approx(1.0), src
            assert all(0.0 < prob <= 1.0 for _, prob in distribution)

    def test_dominant_translation_wins(self):
        corpus = generate_bitext(200, noise=0.15, vocab_size=20, seed=2)
        table = build_translation_table(
            corpus, LocalEngine(), ExecutionMode.BARRIERLESS
        )
        hits = sum(
            1
            for src, distribution in table.items()
            if distribution[0][0] == dominant_translation(src)
        )
        assert hits / len(table) > 0.9

    def test_mode_equivalence_on_synthetic_corpus(self):
        corpus = generate_bitext(80, seed=3)
        barrier = build_translation_table(corpus, LocalEngine(), ExecutionMode.BARRIER)
        barrierless = build_translation_table(
            corpus, LocalEngine(), ExecutionMode.BARRIERLESS
        )
        assert barrier == barrierless == reference_table(corpus)

    def test_spillmerge_normalise_job(self):
        corpus = generate_bitext(80, seed=4)
        memory = MemoryConfig(store="spillmerge", spill_threshold_bytes=2048)
        result = run_pipeline(
            LocalEngine(),
            [
                PipelineStage(
                    make_pair_count_job(ExecutionMode.BARRIERLESS), 4
                ),
                PipelineStage(
                    make_normalise_job(ExecutionMode.BARRIERLESS, memory=memory), 4
                ),
            ],
            corpus,
        )
        assert result.final.output_as_dict() == reference_table(corpus)


class TestBitextGenerator:
    def test_deterministic(self):
        assert generate_bitext(5, seed=9) == generate_bitext(5, seed=9)

    def test_monotone_alignment(self):
        corpus = generate_bitext(3, sentence_length=5, seed=1)
        for _, (src, tgt, alignment) in corpus:
            assert len(src) == len(tgt) == 5
            assert alignment == tuple((i, i) for i in range(5))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_bitext(-1)
        with pytest.raises(ValueError):
            generate_bitext(1, noise=1.0)
