"""Tests for Last.fm unique listens (Post-reduction processing class)."""

from __future__ import annotations

import pytest

from repro.apps.lastfm import (
    BarrierlessUniqueListensReducer,
    ListenMapper,
    UniqueListensReducer,
    make_job,
    merge_user_sets,
)
from repro.core.api import MapContext, ReduceContext, singleton_groups
from repro.core.job import MemoryConfig
from repro.core.types import ExecutionMode, Record
from repro.engine.local import LocalEngine
from repro.memory.store import TreeMapStore
from repro.workloads.listens import generate_listens, unique_listens_reference


class TestMapper:
    def test_emits_track_user(self):
        ctx = MapContext()
        ListenMapper().map(0, ("track1", "alice"), ctx)
        assert ctx.drain() == [Record("track1", "alice")]


class TestReducers:
    def test_barrier_counts_unique(self):
        ctx = ReduceContext([("t", ["u1", "u2", "u1", "u3", "u2"])])
        UniqueListensReducer().run(ctx)
        assert ctx.drain() == [Record("t", 3)]

    def test_barrierless_counts_unique(self):
        reducer = BarrierlessUniqueListensReducer()
        reducer.attach_store(TreeMapStore())
        records = [Record("t", u) for u in ["u1", "u2", "u1"]]
        ctx = ReduceContext(singleton_groups(records))
        reducer.run(ctx)
        assert ctx.drain() == [Record("t", 2)]

    def test_merge_user_sets_union(self):
        assert merge_user_sets(frozenset({"a"}), frozenset({"a", "b"})) == {
            "a",
            "b",
        }


class TestEndToEnd:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_matches_reference(self, mode):
        listens = generate_listens(700, num_users=12, num_tracks=40, seed=2)
        result = LocalEngine().run(make_job(mode), listens, num_maps=4)
        assert result.output_as_dict() == unique_listens_reference(listens)

    def test_unique_count_bounded_by_user_population(self):
        listens = generate_listens(5000, num_users=7, num_tracks=10, seed=8)
        result = LocalEngine().run(
            make_job(ExecutionMode.BARRIERLESS), listens, num_maps=5
        )
        assert all(1 <= v <= 7 for v in result.output_as_dict().values())

    def test_spillmerge_union_across_spills(self):
        # Partial user sets spilled to different files must merge by union.
        listens = generate_listens(800, num_users=20, num_tracks=15, seed=6)
        job = make_job(
            ExecutionMode.BARRIERLESS,
            num_reducers=2,
            memory=MemoryConfig(store="spillmerge", spill_threshold_bytes=2048),
        )
        result = LocalEngine().run(job, listens, num_maps=5)
        assert result.output_as_dict() == unique_listens_reference(listens)
