"""Tests for Black-Scholes Monte Carlo (Single reducer aggregation)."""

from __future__ import annotations

import math

import pytest

from repro.apps.blackscholes import (
    MeanStdReducer,
    MonteCarloMapper,
    make_job,
    reference_statistics,
)
from repro.core.api import MapContext, ReduceContext, singleton_groups
from repro.core.types import ExecutionMode, Record
from repro.engine.local import LocalEngine
from repro.workloads.options import (
    OptionParams,
    black_scholes_closed_form,
    generate_mc_batches,
)


class TestMapper:
    def test_emits_value_and_square(self):
        ctx = MapContext()
        MonteCarloMapper().map(0, (OptionParams(), 100, 42), ctx)
        records = ctx.drain()
        assert len(records) == 100
        for record in records:
            value, square = record.value
            assert record.key == 0
            assert square == pytest.approx(value * value)
            assert value >= 0.0  # discounted payoffs are non-negative


class TestMeanStdReducer:
    def test_paper_identity(self):
        # sigma = sqrt(mean(x^2) - mean(x)^2), computed incrementally.
        values = [1.0, 2.0, 3.0, 4.0]
        reducer = MeanStdReducer()
        records = [Record(0, (v, v * v)) for v in values]
        ctx = ReduceContext(singleton_groups(records))
        reducer.run(ctx)
        out = {r.key: r.value for r in ctx.drain()}
        mean = sum(values) / len(values)
        var = sum(v * v for v in values) / len(values) - mean * mean
        assert out["mean"] == pytest.approx(mean)
        assert out["stddev"] == pytest.approx(math.sqrt(var))
        assert out["count"] == 4

    def test_empty_input_emits_nothing(self):
        reducer = MeanStdReducer()
        ctx = ReduceContext([])
        reducer.run(ctx)
        assert ctx.drain() == []

    def test_constant_values_zero_stddev(self):
        reducer = MeanStdReducer()
        records = [Record(0, (5.0, 25.0))] * 10
        ctx = ReduceContext(singleton_groups(records))
        reducer.run(ctx)
        out = {r.key: r.value for r in ctx.drain()}
        assert out["stddev"] == pytest.approx(0.0, abs=1e-12)


class TestEndToEnd:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_matches_reference_statistics(self, mode):
        batches = generate_mc_batches(4, 800, seed=1)
        result = LocalEngine().run(make_job(mode), batches, num_maps=4)
        out = result.output_as_dict()
        mean, stddev, count = reference_statistics(OptionParams(), batches)
        assert out["mean"] == pytest.approx(mean, rel=1e-9)
        assert out["stddev"] == pytest.approx(stddev, rel=1e-9)
        assert out["count"] == count

    def test_monte_carlo_converges_to_closed_form(self):
        params = OptionParams()
        batches = generate_mc_batches(8, 20_000, params=params, seed=7)
        result = LocalEngine().run(
            make_job(ExecutionMode.BARRIERLESS), batches, num_maps=4
        )
        out = result.output_as_dict()
        analytic = black_scholes_closed_form(params)
        standard_error = out["stddev"] / math.sqrt(out["count"])
        assert abs(out["mean"] - analytic) < 4 * standard_error

    def test_single_reducer_enforced(self):
        assert make_job(ExecutionMode.BARRIER).num_reducers == 1

    def test_result_independent_of_map_distribution(self):
        batches = generate_mc_batches(6, 300, seed=3)
        engine = LocalEngine()
        job = make_job(ExecutionMode.BARRIERLESS)
        one = engine.run(job, batches, num_maps=1).output_as_dict()
        many = engine.run(job, batches, num_maps=6).output_as_dict()
        assert one["mean"] == pytest.approx(many["mean"], rel=1e-12)
        assert one["count"] == many["count"]
