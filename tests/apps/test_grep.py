"""Tests for Distributed Grep (Identity class)."""

from __future__ import annotations

from repro.apps import grep
from repro.core.types import ExecutionMode, ReduceClass


class TestGrep:
    def test_matches_only(self, local_engine):
        pairs = [("d0", "alpha line\nbeta line"), ("d1", "gamma")]
        job = grep.make_job(ExecutionMode.BARRIER, pattern="beta")
        result = local_engine.run(job, pairs, num_maps=2)
        assert result.output_as_dict() == {"d0:1": "beta line"}

    def test_multiline_documents(self, local_engine):
        pairs = [("d", "x\nmatch here\nx\nmatch again")]
        job = grep.make_job(ExecutionMode.BARRIERLESS, pattern="match")
        result = local_engine.run(job, pairs, num_maps=1)
        assert result.output_as_dict() == {
            "d:1": "match here",
            "d:3": "match again",
        }

    def test_regex_patterns(self, local_engine):
        pairs = [("d", "cat\ncar\ncab")]
        job = grep.make_job(ExecutionMode.BARRIER, pattern=r"ca[rt]")
        result = local_engine.run(job, pairs, num_maps=1)
        assert set(result.output_as_dict().values()) == {"cat", "car"}

    def test_no_matches(self, local_engine):
        job = grep.make_job(ExecutionMode.BARRIERLESS, pattern="zzz")
        result = local_engine.run(job, [("d", "nothing here")], num_maps=1)
        assert result.all_output() == []

    def test_classified_as_identity(self):
        assert grep.make_job(ExecutionMode.BARRIER).reduce_class is ReduceClass.IDENTITY

    def test_reference_output_helper(self):
        pairs = [("d", "yes\nno")]
        assert grep.reference_output(pairs, "yes") == {"d:0": "yes"}
