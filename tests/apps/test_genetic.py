"""Tests for the genetic algorithm (Cross-key operations class)."""

from __future__ import annotations

import pytest

from repro.apps.genetic import (
    FitnessMapper,
    SelectionCrossoverReducer,
    make_job,
)
from repro.core.api import MapContext, ReduceContext, singleton_groups
from repro.core.types import ExecutionMode, Record
from repro.engine.local import LocalEngine
from repro.workloads.population import (
    generate_population,
    mean_fitness,
    onemax_fitness,
)


class TestFitnessMapper:
    def test_emits_genome_fitness(self):
        ctx = MapContext()
        FitnessMapper().map(0, 0b1011, ctx)
        assert ctx.drain() == [Record(0b1011, 3)]


class TestSelectionCrossoverReducer:
    def _run(self, genomes, window=4):
        reducer = SelectionCrossoverReducer(window_size=window, genome_bits=8)
        records = [Record(g, onemax_fitness(g)) for g in genomes]
        ctx = ReduceContext(singleton_groups(records))
        reducer.run(ctx)
        return ctx.drain()

    def test_population_size_conserved(self):
        out = self._run([0b11110000, 0b00001111, 0b10101010, 0b11111111])
        assert len(out) == 4

    def test_residual_window_flushed(self):
        out = self._run([0b1, 0b11, 0b111], window=4)
        assert len(out) == 3

    def test_output_carries_fitness(self):
        out = self._run([0b11000000, 0b00000011, 0b11100000, 0b00000111])
        for record in out:
            assert record.value == onemax_fitness(record.key)

    def test_selection_pressure_improves_fitness(self):
        # Selection keeps the fitter half; offspring of fit parents can't
        # be worse on OneMax-average than the original population.
        genomes = [0b11111111, 0b11111110, 0b00000001, 0b00000000]
        out = self._run(genomes)
        before = sum(onemax_fitness(g) for g in genomes) / len(genomes)
        after = sum(r.value for r in out) / len(out)
        assert after >= before


class TestEndToEnd:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_generation_conserves_population(self, mode):
        population = generate_population(60, genome_bits=16, seed=1)
        job = make_job(mode, window_size=10, genome_bits=16, num_reducers=3)
        result = LocalEngine().run(job, population, num_maps=4)
        assert len(result.all_output()) == len(population)

    def test_mean_fitness_does_not_degrade(self):
        population = generate_population(100, genome_bits=32, seed=2)
        job = make_job(ExecutionMode.BARRIERLESS, window_size=16, num_reducers=2)
        result = LocalEngine().run(job, population, num_maps=4)
        next_generation = [(r.key, r.key) for r in result.all_output()]
        assert mean_fitness(next_generation) >= mean_fitness(population)

    def test_multi_generation_convergence(self):
        # Iterating the GA job must increase OneMax fitness monotonically
        # (selection is elitist within every window).
        population = generate_population(64, genome_bits=16, seed=3)
        engine = LocalEngine()
        fitness_history = [mean_fitness(population)]
        current = population
        for _generation in range(4):
            job = make_job(
                ExecutionMode.BARRIERLESS, window_size=8, genome_bits=16,
                num_reducers=2,
            )
            result = engine.run(job, current, num_maps=4)
            current = [(i, r.key) for i, r in enumerate(result.all_output())]
            fitness_history.append(mean_fitness(current))
        assert fitness_history[-1] > fitness_history[0]
        assert all(
            later >= earlier - 1e-9
            for earlier, later in zip(fitness_history, fitness_history[1:])
        )

    def test_same_reducer_class_both_modes(self):
        # Table 2's "0% increase": the identical reducer serves both modes.
        barrier = make_job(ExecutionMode.BARRIER)
        barrierless = make_job(ExecutionMode.BARRIERLESS)
        assert type(barrier.reducer_factory()) is type(
            barrierless.reducer_factory()
        )
