"""Integration tests: every example script must run clean end-to-end.

Examples are executed in-process via ``runpy`` so their internal
assertions (mode equivalence, Monte-Carlo convergence, population
conservation, …) become part of the suite.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
