"""Unit tests for repro.core.types."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import (
    Counters,
    ExecutionMode,
    InvalidJobError,
    JobResult,
    Record,
    ReducerOutOfMemoryError,
    StageTimes,
    default_partition,
    make_records,
)


class TestRecord:
    def test_unpacking(self):
        key, value = Record("a", 1)
        assert key == "a" and value == 1

    def test_equality_and_hash(self):
        assert Record("a", 1) == Record("a", 1)
        assert Record("a", 1) != Record("a", 2)
        assert hash(Record("a", 1)) == hash(Record("a", 1))

    def test_immutability(self):
        record = Record("a", 1)
        with pytest.raises(AttributeError):
            record.key = "b"  # type: ignore[misc]

    def test_make_records(self):
        records = make_records([("a", 1), ("b", 2)])
        assert records == [Record("a", 1), Record("b", 2)]


class TestCounters:
    def test_increment_and_get(self):
        counters = Counters()
        counters.increment("x")
        counters.increment("x", 4)
        assert counters.get("x") == 5

    def test_get_missing_is_zero(self):
        assert Counters().get("nothing") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("x", 2)
        b.increment("x", 3)
        b.increment("y", 1)
        a.merge(b)
        assert a.get("x") == 5
        assert a.get("y") == 1

    def test_as_dict_is_snapshot(self):
        counters = Counters()
        counters.increment("x")
        snapshot = counters.as_dict()
        counters.increment("x")
        assert snapshot == {"x": 1}


class TestStageTimes:
    def test_mapper_slack(self):
        times = StageTimes(first_map_done=50.0, shuffle_done=170.0)
        assert times.mapper_slack == pytest.approx(120.0)

    def test_mapper_slack_never_negative(self):
        times = StageTimes(first_map_done=100.0, shuffle_done=50.0)
        assert times.mapper_slack == 0.0

    def test_barrier_wait(self):
        times = StageTimes(last_map_done=155.0, sort_done=170.0)
        assert times.barrier_wait == pytest.approx(15.0)


class TestDefaultPartition:
    def test_single_partition(self):
        assert default_partition("anything", 1) == 0

    def test_range(self):
        for key in ("a", "b", 3, (1, 2), "longer-key"):
            assert 0 <= default_partition(key, 7) < 7

    def test_deterministic_across_calls(self):
        assert default_partition("stable", 13) == default_partition("stable", 13)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidJobError):
            default_partition("k", 0)

    @given(st.integers(), st.integers(min_value=1, max_value=64))
    def test_property_in_range(self, key, n):
        assert 0 <= default_partition(key, n) < n

    def test_spreads_keys(self):
        # 1000 distinct keys over 10 partitions: no partition should be
        # empty and none should hold more than half the keys.
        counts = [0] * 10
        for i in range(1000):
            counts[default_partition(f"key-{i}", 10)] += 1
        assert min(counts) > 0
        assert max(counts) < 500


class TestJobResult:
    def _result(self) -> JobResult:
        return JobResult(
            output={1: [Record("b", 2)], 0: [Record("a", 1)]},
            counters=Counters(),
            stage_times=StageTimes(),
            mode=ExecutionMode.BARRIER,
        )

    def test_all_output_reducer_order(self):
        assert [r.key for r in self._result().all_output()] == ["a", "b"]

    def test_output_as_dict(self):
        assert self._result().output_as_dict() == {"a": 1, "b": 2}


class TestErrors:
    def test_oom_message(self):
        err = ReducerOutOfMemoryError(2048, 1024)
        assert err.used_bytes == 2048
        assert err.limit_bytes == 1024
        assert "2048" in str(err)
