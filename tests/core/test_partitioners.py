"""Tests for the sampled range partitioner (terasort-style)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import sortapp
from repro.core.partitioners import SampledRangePartitioner, sample_keys
from repro.core.types import ExecutionMode, InvalidJobError
from repro.engine.local import LocalEngine
from repro.workloads.ints import generate_sort_records


class TestSampledRangePartitioner:
    def test_boundaries_split_ranges(self):
        part = SampledRangePartitioner.from_sample(list(range(100)), 4)
        assert part.num_partitions == 4
        assert part(0, 4) == 0
        assert part(99, 4) == 3
        # Monotone: larger keys never land in earlier partitions.
        assignments = [part(k, 4) for k in range(100)]
        assert assignments == sorted(assignments)

    def test_balances_skewed_keys(self):
        # Heavily skewed keys: 90% of mass in [0, 10).
        keys = [i % 10 for i in range(900)] + list(range(100, 200))
        part = SampledRangePartitioner.from_sample(keys, 5)
        assert part.balance_ratio(keys) < 2.5
        # A uniform-assumption range partitioner would dump ~90% of keys
        # into its first bucket over the same data.
        uniform = sortapp.RangePartitioner(key_range=200)
        counts = [0] * 5
        for key in keys:
            counts[uniform(key, 5)] += 1
        assert max(counts) / (sum(counts) / 5) > 3.0

    def test_wrong_partition_count_rejected(self):
        part = SampledRangePartitioner.from_sample([1, 2, 3], 2)
        with pytest.raises(InvalidJobError):
            part(1, 5)

    def test_empty_sample_rejected(self):
        with pytest.raises(InvalidJobError):
            SampledRangePartitioner.from_sample([], 3)

    def test_single_partition(self):
        part = SampledRangePartitioner.from_sample([5, 9], 1)
        assert part(7, 1) == 0
        assert part(-100, 1) == 0

    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
        st.integers(1, 12),
    )
    def test_property_monotone_and_in_range(self, sample, n):
        part = SampledRangePartitioner.from_sample(sample, n)
        previous = 0
        for key in sorted(set(sample)):
            partition = part(key, n)
            assert 0 <= partition < n
            assert partition >= previous
            previous = partition


class TestSampleKeys:
    def test_small_input_returned_whole(self):
        pairs = [(i, i) for i in range(5)]
        assert sorted(sample_keys(pairs, 100)) == [0, 1, 2, 3, 4]

    def test_sample_size_respected(self):
        pairs = [(i, i) for i in range(1000)]
        assert len(sample_keys(pairs, 50, seed=1)) == 50

    def test_deterministic(self):
        pairs = [(i, i) for i in range(1000)]
        assert sample_keys(pairs, 50, seed=2) == sample_keys(pairs, 50, seed=2)

    def test_empty_input(self):
        assert sample_keys([], 10) == []

    def test_rejects_bad_size(self):
        with pytest.raises(InvalidJobError):
            sample_keys([(1, 1)], 0)


class TestSortWithSampledPartitioner:
    def test_total_order_preserved(self):
        records = generate_sort_records(400, key_range=1_000_000, seed=31)
        job = sortapp.make_job(ExecutionMode.BARRIERLESS, num_reducers=4)
        job.partition_fn = SampledRangePartitioner.from_sample(
            sample_keys(records, 100, seed=1), 4
        )
        result = LocalEngine().run(job, records, num_maps=4)
        out = [(r.key, r.value) for r in result.all_output()]
        assert out == sortapp.reference_output(records)

    def test_skewed_sort_balanced(self):
        # All keys clustered near zero: the sampled partitioner still
        # spreads reducer load.
        records = [(k % 50, k % 50) for k in range(500)]
        partitioner = SampledRangePartitioner.from_sample(
            sample_keys(records, 200, seed=2), 4
        )
        job = sortapp.make_job(ExecutionMode.BARRIERLESS, num_reducers=4)
        job.partition_fn = partitioner
        result = LocalEngine().run(job, records, num_maps=4)
        out = [(r.key, r.value) for r in result.all_output()]
        assert out == sortapp.reference_output(records)
        loads = [len(result.output[i]) for i in range(4)]
        assert max(loads) / (sum(loads) / 4) < 2.5
