"""Unit tests for JobSpec, MemoryConfig and input splitting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.api import Mapper, Reducer
from repro.core.job import JobSpec, MemoryConfig, split_input
from repro.core.types import ExecutionMode, InvalidJobError


class _NoopMapper(Mapper):
    def map(self, key, value, context):
        pass


def _spec(**overrides) -> JobSpec:
    config = dict(
        name="t",
        mapper_factory=_NoopMapper,
        reducer_factory=Reducer,
        num_reducers=2,
    )
    config.update(overrides)
    return JobSpec(**config)


class TestMemoryConfig:
    def test_default_is_valid(self):
        MemoryConfig().validate()

    def test_unknown_store_rejected(self):
        with pytest.raises(InvalidJobError):
            MemoryConfig(store="redis").validate()

    @pytest.mark.parametrize(
        "field", ["heap_limit_bytes", "spill_threshold_bytes", "kv_cache_bytes"]
    )
    def test_nonpositive_limits_rejected(self, field):
        with pytest.raises(InvalidJobError):
            MemoryConfig(**{field: 0}).validate()


class TestJobSpec:
    def test_valid_spec(self):
        _spec().validate()

    def test_rejects_zero_reducers(self):
        with pytest.raises(InvalidJobError):
            _spec(num_reducers=0).validate()

    def test_rejects_noncallable_factories(self):
        with pytest.raises(InvalidJobError):
            _spec(mapper_factory="not-callable").validate()

    def test_spillmerge_requires_merge_fn(self):
        spec = _spec(memory=MemoryConfig(store="spillmerge"))
        with pytest.raises(InvalidJobError):
            spec.validate()
        _spec(
            memory=MemoryConfig(store="spillmerge"), merge_fn=lambda a, b: a + b
        ).validate()

    def test_with_mode_copies(self):
        spec = _spec(mode=ExecutionMode.BARRIER)
        other = spec.with_mode(ExecutionMode.BARRIERLESS)
        assert other.mode is ExecutionMode.BARRIERLESS
        assert spec.mode is ExecutionMode.BARRIER
        assert other.name == spec.name
        assert other.mapper_factory is spec.mapper_factory


class TestSplitInput:
    def test_even_split(self):
        splits = split_input([(i, i) for i in range(10)], 5)
        assert [len(s) for s in splits] == [2, 2, 2, 2, 2]

    def test_uneven_split_front_loaded(self):
        splits = split_input([(i, i) for i in range(7)], 3)
        assert [len(s) for s in splits] == [3, 2, 2]

    def test_more_splits_than_items_drops_empties(self):
        splits = split_input([(1, 1), (2, 2)], 6)
        assert [len(s) for s in splits] == [1, 1]

    def test_empty_input(self):
        assert split_input([], 4) == []

    def test_rejects_zero_splits(self):
        with pytest.raises(InvalidJobError):
            split_input([(1, 1)], 0)

    @given(
        st.lists(st.tuples(st.integers(), st.integers()), max_size=100),
        st.integers(min_value=1, max_value=20),
    )
    def test_property_splits_partition_the_input(self, pairs, n):
        splits = split_input(pairs, n)
        # Concatenation restores the input exactly (order-preserving).
        flattened = [pair for split in splits for pair in split]
        assert flattened == list(pairs)
        # No split is empty and sizes differ by at most one.
        if pairs:
            sizes = [len(s) for s in splits]
            assert min(sizes) >= 1
            assert max(sizes) - min(sizes) <= 1
