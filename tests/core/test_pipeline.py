"""Tests for multi-job pipelines and iterated jobs."""

from __future__ import annotations

import pytest

from repro.apps import genetic, wordcount
from repro.apps.similarity import (
    make_index_job,
    make_similarity_job,
    reference_similarity,
)
from repro.core.pipeline import PipelineStage, iterate_job, run_pipeline
from repro.core.types import ExecutionMode
from repro.engine.local import LocalEngine
from repro.workloads.population import generate_population, mean_fitness


class TestRunPipeline:
    def test_two_stage_similarity(self):
        docs = [("a", "x y"), ("b", "y z"), ("c", "z x")]
        result = run_pipeline(
            LocalEngine(),
            [
                PipelineStage(make_index_job(ExecutionMode.BARRIERLESS), 2),
                PipelineStage(make_similarity_job(ExecutionMode.BARRIERLESS), 2),
            ],
            docs,
        )
        assert result.final.output_as_dict() == reference_similarity(docs)
        assert len(result.stages) == 2

    def test_single_stage_equals_direct_run(self, small_corpus):
        engine = LocalEngine()
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        piped = run_pipeline(engine, [PipelineStage(job, 4)], small_corpus)
        direct = engine.run(job, small_corpus, num_maps=4)
        assert piped.final.output_as_dict() == direct.output_as_dict()

    def test_total_counter_sums_stages(self, small_corpus):
        engine = LocalEngine()
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        result = run_pipeline(
            engine,
            [PipelineStage(job, 2), PipelineStage(job, 2)],
            small_corpus,
        )
        assert result.total_counter("reduce.tasks") == 8  # 4 reducers x 2

    def test_empty_pipeline_rejected(self, small_corpus):
        with pytest.raises(ValueError):
            run_pipeline(LocalEngine(), [], small_corpus)


class TestIterateJob:
    def test_ga_generations_improve(self):
        population = generate_population(64, 16, seed=21)

        def make_stage(round_index):
            return PipelineStage(
                genetic.make_job(
                    ExecutionMode.BARRIERLESS, window_size=8,
                    genome_bits=16, num_reducers=2,
                ),
                num_maps=4,
                adapt=genetic.next_generation_pairs,
            )

        result = iterate_job(LocalEngine(), make_stage, population, max_rounds=4)
        assert len(result.stages) == 4
        final_population = [
            (record.key, record.key) for record in result.final.all_output()
        ]
        assert mean_fitness(final_population) >= mean_fitness(population)

    def test_convergence_predicate_stops_early(self, small_corpus):
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        result = iterate_job(
            LocalEngine(),
            lambda _round: PipelineStage(job, 2),
            small_corpus,
            max_rounds=10,
            converged=lambda _result, round_index: round_index >= 1,
        )
        assert len(result.stages) == 2

    def test_rejects_zero_rounds(self, small_corpus):
        with pytest.raises(ValueError):
            iterate_job(
                LocalEngine(),
                lambda r: PipelineStage(wordcount.make_job(ExecutionMode.BARRIER)),
                small_corpus,
                max_rounds=0,
            )
