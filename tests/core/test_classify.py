"""Tests for the Table 1 classification registry."""

from __future__ import annotations

import pytest

from repro.core.classify import (
    TABLE_1,
    classify,
    format_table_1,
    partial_result_complexity,
    requires_key_sort,
)
from repro.core.types import ReduceClass


class TestTable1:
    def test_has_seven_rows(self):
        assert len(TABLE_1) == 7

    def test_every_class_appears_once(self):
        classes = [entry.reduce_class for entry in TABLE_1]
        assert sorted(c.value for c in classes) == sorted(
            c.value for c in ReduceClass
        )

    def test_only_sorting_requires_key_sort(self):
        # "This is the only prominent kind of operation we found that
        # requires a strict ordering on the output keys." (§4.2)
        for entry in TABLE_1:
            expected = entry.reduce_class is ReduceClass.SORTING
            assert entry.key_sort_required is expected

    @pytest.mark.parametrize(
        "reduce_class,complexity",
        [
            (ReduceClass.IDENTITY, "O(1)"),
            (ReduceClass.SORTING, "O(records)"),
            (ReduceClass.AGGREGATION, "O(keys)"),
            (ReduceClass.SELECTION, "O(k * keys)"),
            (ReduceClass.POST_REDUCTION, "O(records)"),
            (ReduceClass.CROSS_KEY, "O(window_size)"),
            (ReduceClass.SINGLE_REDUCER, "O(1)"),
        ],
    )
    def test_partial_result_sizes_match_paper(self, reduce_class, complexity):
        assert partial_result_complexity(reduce_class) == complexity

    def test_classify_lookup(self):
        entry = classify(ReduceClass.AGGREGATION)
        assert entry.application == "Word Count"

    def test_requires_key_sort_helper(self):
        assert requires_key_sort(ReduceClass.SORTING)
        assert not requires_key_sort(ReduceClass.AGGREGATION)

    def test_format_contains_all_apps(self):
        rendered = format_table_1()
        for entry in TABLE_1:
            assert entry.application in rendered
