"""Unit tests for repro.core.api: contexts, grouping, combiners."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.api import (
    FunctionCombiner,
    MapContext,
    ReduceContext,
    Reducer,
    group_sorted_records,
    singleton_groups,
)
from repro.core.types import Record


class TestMapContext:
    def test_emit_and_drain(self):
        ctx = MapContext()
        ctx.emit("a", 1)
        ctx.emit("b", 2)
        assert ctx.drain() == [Record("a", 1), Record("b", 2)]
        assert ctx.drain() == []  # drained

    def test_counts_output_records(self):
        ctx = MapContext()
        ctx.emit("a", 1)
        ctx.emit("a", 2)
        assert ctx.counters.get("map.output_records") == 2


class TestReduceContext:
    def test_iteration_protocol(self):
        ctx = ReduceContext([("a", [1, 2]), ("b", [3])])
        assert ctx.next_key()
        assert ctx.current_key() == "a"
        assert list(ctx.current_values()) == [1, 2]
        assert ctx.next_key()
        assert ctx.current_key() == "b"
        assert not ctx.next_key()

    def test_current_before_next_raises(self):
        ctx = ReduceContext([])
        with pytest.raises(RuntimeError):
            ctx.current_key()
        with pytest.raises(RuntimeError):
            ctx.current_values()

    def test_current_after_exhaustion_raises(self):
        ctx = ReduceContext([("a", [1])])
        assert ctx.next_key()
        assert not ctx.next_key()
        with pytest.raises(RuntimeError):
            ctx.current_key()

    def test_write_and_drain(self):
        ctx = ReduceContext([])
        ctx.write("k", 9)
        assert ctx.drain() == [Record("k", 9)]
        assert ctx.counters.get("reduce.output_records") == 1


class TestGrouping:
    def test_group_sorted_records(self):
        records = [Record("a", 1), Record("a", 2), Record("b", 3)]
        groups = list(group_sorted_records(records))
        assert groups == [("a", [1, 2]), ("b", [3])]

    def test_group_empty(self):
        assert list(group_sorted_records([])) == []

    def test_group_single(self):
        assert list(group_sorted_records([Record("x", 0)])) == [("x", [0])]

    def test_singleton_groups_preserve_arrival_order(self):
        records = [Record("b", 1), Record("a", 2), Record("b", 3)]
        groups = list(singleton_groups(records))
        assert groups == [("b", [1]), ("a", [2]), ("b", [3])]

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=5), st.integers()),
            max_size=60,
        )
    )
    def test_grouping_conserves_values(self, pairs):
        # Grouping sorted records must preserve every value exactly once.
        records = [Record(k, v) for k, v in sorted(pairs, key=lambda p: p[0])]
        regrouped = [
            (key, value)
            for key, values in group_sorted_records(records)
            for value in values
        ]
        assert regrouped == [(r.key, r.value) for r in records]

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=5), st.integers()),
            max_size=60,
        )
    )
    def test_groups_have_unique_consecutive_keys(self, pairs):
        records = [Record(k, v) for k, v in sorted(pairs, key=lambda p: p[0])]
        keys = [key for key, _ in group_sorted_records(records)]
        assert keys == sorted(set(keys))


class TestCombiner:
    def test_function_combiner_sums(self):
        combiner = FunctionCombiner(lambda a, b: a + b)
        assert combiner.combine("k", [1, 2, 3]) == [6]

    def test_function_combiner_empty(self):
        combiner = FunctionCombiner(lambda a, b: a + b)
        assert combiner.combine("k", []) == []

    def test_function_combiner_single(self):
        combiner = FunctionCombiner(max)
        assert combiner.combine("k", [42]) == [42]


class TestDefaultReducer:
    def test_identity_run(self):
        reducer = Reducer()
        ctx = ReduceContext([("a", [1, 2]), ("b", [3])])
        reducer.run(ctx)
        assert ctx.drain() == [Record("a", 1), Record("a", 2), Record("b", 3)]
