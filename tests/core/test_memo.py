"""Tests for memoization (§8 future work: DryadInc-style reuse)."""

from __future__ import annotations

import pytest

from repro.apps import wordcount
from repro.core.memo import (
    MapOutputCache,
    MemoizingEngine,
    merge_job_outputs,
    split_digest,
)
from repro.core.types import ExecutionMode
from repro.workloads.text import generate_documents


class TestSplitDigest:
    def test_deterministic(self):
        split = [(0, "a b c"), (1, "d e")]
        assert split_digest("job:v1", split) == split_digest("job:v1", split)

    def test_sensitive_to_content(self):
        assert split_digest("j", [(0, "a")]) != split_digest("j", [(0, "b")])

    def test_sensitive_to_job_identity(self):
        split = [(0, "same")]
        assert split_digest("job:v1", split) != split_digest("job:v2", split)


class TestMapOutputCache:
    def test_put_get_roundtrip(self):
        cache = MapOutputCache()
        cache.put("d1", ["records"])
        assert cache.get("d1") == ["records"]
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = MapOutputCache()
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_fifo_eviction(self):
        cache = MapOutputCache(max_entries=2)
        cache.put("a", [1])
        cache.put("b", [2])
        cache.put("c", [3])
        assert cache.get("a") is None
        assert cache.get("b") == [2]
        assert len(cache) == 2

    def test_clear(self):
        cache = MapOutputCache()
        cache.put("a", [1])
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MapOutputCache(max_entries=0)


class TestMemoizingEngine:
    @pytest.fixture
    def corpus(self):
        return generate_documents(24, words_per_doc=30, vocab_size=100, seed=1)

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_correct_output(self, mode, corpus):
        engine = MemoizingEngine()
        result = engine.run(wordcount.make_job(mode), corpus, num_maps=4)
        assert result.output_as_dict() == wordcount.reference_output(corpus)

    def test_second_run_fully_memoized(self, corpus):
        engine = MemoizingEngine()
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        first = engine.run(job, corpus, num_maps=4)
        assert first.counters.get("map.tasks") == 4
        second = engine.run(job, corpus, num_maps=4)
        assert second.counters.get("map.tasks") == 0
        assert second.counters.get("map.tasks_memoized") == 4
        assert second.output_as_dict() == first.output_as_dict()

    def test_incremental_input_reexecutes_changed_splits_only(self, corpus):
        engine = MemoizingEngine()
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        engine.run(job, corpus, num_maps=4)
        # Change only the last quarter of the input.
        modified = list(corpus)
        modified[-1] = (modified[-1][0], "brand new words here")
        result = engine.run(job, modified, num_maps=4)
        assert result.counters.get("map.tasks_memoized") == 3
        assert result.counters.get("map.tasks") == 1
        assert result.output_as_dict() == wordcount.reference_output(modified)

    def test_version_bump_invalidates(self, corpus):
        engine = MemoizingEngine()
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        engine.run(job, corpus, num_maps=4)
        engine.job_version = "v2"
        result = engine.run(job, corpus, num_maps=4)
        assert result.counters.get("map.tasks") == 4


class TestMergeJobOutputs:
    def test_dryadinc_pattern(self):
        # Yesterday's word counts + today's delta = full recount.
        yesterday_docs = generate_documents(10, 20, 50, seed=2)
        today_docs = generate_documents(5, 20, 50, seed=3)
        engine = MemoizingEngine()
        job = wordcount.make_job(ExecutionMode.BARRIERLESS)
        previous = engine.run(job, yesterday_docs, num_maps=2).output_as_dict()
        delta = engine.run(job, today_docs, num_maps=2).output_as_dict()
        merged = merge_job_outputs(previous, delta, wordcount.merge_counts)
        full = wordcount.reference_output(list(yesterday_docs) + list(today_docs))
        assert merged == full

    def test_disjoint_keys_pass_through(self):
        merged = merge_job_outputs({"a": 1}, {"b": 2}, lambda x, y: x + y)
        assert merged == {"a": 1, "b": 2}

    def test_inputs_not_mutated(self):
        previous = {"a": 1}
        delta = {"a": 2}
        merge_job_outputs(previous, delta, lambda x, y: x + y)
        assert previous == {"a": 1} and delta == {"a": 2}
