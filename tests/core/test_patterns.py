"""Unit tests for the per-class barrier-less reducer scaffolds."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.api import ReduceContext
from repro.core.patterns import (
    AggregationReducer,
    BarrierlessReducer,
    CrossKeyWindowReducer,
    IdentityBarrierlessReducer,
    PostReductionReducer,
    RunningAggregateReducer,
    SelectionReducer,
    SortingReducer,
)
from repro.core.types import Record
from repro.core.api import singleton_groups
from repro.memory.store import TreeMapStore


def run_barrierless(reducer, records):
    """Drive a reducer over singleton-record groups, returning its output."""
    if isinstance(reducer, BarrierlessReducer):
        reducer.attach_store(TreeMapStore())
    ctx = ReduceContext(singleton_groups([Record(k, v) for k, v in records]))
    reducer.run(ctx)
    return [(r.key, r.value) for r in ctx.drain()]


class TestStoreAttachment:
    def test_run_without_store_raises(self):
        reducer = AggregationReducer(lambda a, b: a + b)
        ctx = ReduceContext([])
        with pytest.raises(RuntimeError, match="store"):
            reducer.run(ctx)


class TestIdentity:
    def test_passthrough_in_arrival_order(self):
        out = run_barrierless(
            IdentityBarrierlessReducer(), [("b", 1), ("a", 2), ("b", 3)]
        )
        assert out == [("b", 1), ("a", 2), ("b", 3)]

    def test_no_store_needed(self):
        reducer = IdentityBarrierlessReducer()
        ctx = ReduceContext(singleton_groups([Record("x", 1)]))
        reducer.run(ctx)  # must not raise despite no attached store
        assert ctx.drain() == [Record("x", 1)]


class TestAggregation:
    def test_sums_per_key_sorted_output(self):
        out = run_barrierless(
            AggregationReducer(lambda a, b: a + b, 0),
            [("b", 1), ("a", 2), ("b", 3), ("a", 5)],
        )
        assert out == [("a", 7), ("b", 4)]

    def test_product_aggregation(self):
        out = run_barrierless(
            AggregationReducer(lambda a, b: a * b, 1), [("x", 3), ("x", 4)]
        )
        assert out == [("x", 12)]

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(-50, 50)), max_size=80))
    def test_matches_dict_fold(self, pairs):
        expected: dict[int, int] = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        out = dict(run_barrierless(AggregationReducer(lambda a, b: a + b, 0), pairs))
        assert out == expected


class TestSelection:
    def test_keeps_k_smallest(self):
        reducer = SelectionReducer(k=2, score=lambda v: v)
        out = run_barrierless(reducer, [("a", 5), ("a", 1), ("a", 3), ("a", 0)])
        assert out == [("a", 0), ("a", 1)]

    def test_keeps_k_largest(self):
        reducer = SelectionReducer(k=2, score=lambda v: v, largest=True)
        out = run_barrierless(reducer, [("a", 5), ("a", 1), ("a", 9), ("a", 3)])
        assert out == [("a", 9), ("a", 5)]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SelectionReducer(k=0, score=lambda v: v)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    def test_running_topk_equals_sorted_topk(self, values):
        k = 5
        reducer = SelectionReducer(k=k, score=lambda v: v)
        out = run_barrierless(reducer, [("key", v) for v in values])
        assert [v for _, v in out] == sorted(values)[:k]


class _UniqueCount(PostReductionReducer):
    def make_structure(self, key):
        return frozenset()

    def accumulate(self, structure, value):
        return structure | {value}

    def post_process(self, key, structure):
        return len(structure)


class TestPostReduction:
    def test_unique_counting(self):
        out = run_barrierless(_UniqueCount(), [("t", "u1"), ("t", "u2"), ("t", "u1")])
        assert out == [("t", 2)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 5)), max_size=60
        )
    )
    def test_matches_set_semantics(self, pairs):
        expected: dict[int, set[int]] = {}
        for k, v in pairs:
            expected.setdefault(k, set()).add(v)
        out = dict(run_barrierless(_UniqueCount(), pairs))
        assert out == {k: len(s) for k, s in expected.items()}


class _SumWindow(CrossKeyWindowReducer):
    def process_window(self, window):
        yield "sum", sum(v for _, v in window)


class TestCrossKeyWindow:
    def test_window_fires_when_full(self):
        reducer = _SumWindow(window_size=2)
        out = run_barrierless(reducer, [(1, 10), (2, 20), (3, 30), (4, 40)])
        assert out == [("sum", 30), ("sum", 70)]

    def test_residual_window_flushed_at_end(self):
        reducer = _SumWindow(window_size=3)
        out = run_barrierless(reducer, [(1, 1), (2, 2), (3, 3), (4, 4)])
        assert out == [("sum", 6), ("sum", 4)]

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            _SumWindow(window_size=0)

    @given(st.lists(st.integers(-9, 9), max_size=50), st.integers(1, 7))
    def test_all_values_processed_exactly_once(self, values, window):
        reducer = _SumWindow(window_size=window)
        out = run_barrierless(reducer, [(i, v) for i, v in enumerate(values)])
        assert sum(v for _, v in out) == sum(values)


class _CountingAggregate(RunningAggregateReducer):
    def initial_state(self):
        return 0

    def update(self, state, key, value):
        return state + value

    def finish(self, state):
        yield "total", state


class TestRunningAggregate:
    def test_total_over_all_keys(self):
        out = run_barrierless(_CountingAggregate(), [("a", 1), ("b", 2), ("c", 3)])
        assert out == [("total", 6)]

    def test_empty_input(self):
        out = run_barrierless(_CountingAggregate(), [])
        assert out == [("total", 0)]


class TestSortingReducer:
    def test_emits_sorted_with_multiplicity(self):
        out = run_barrierless(SortingReducer(), [(3, 3), (1, 1), (3, 3), (2, 2)])
        assert out == [(1, 1), (2, 2), (3, 3), (3, 3)]

    @given(st.lists(st.integers(-20, 20), max_size=60))
    def test_equals_builtin_sort(self, keys):
        out = run_barrierless(SortingReducer(), [(k, k) for k in keys])
        assert [k for k, _ in out] == sorted(keys)
