"""Tests for CSV export of the regenerated experiments."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.export import (
    export_all,
    write_boxplot_csv,
    write_memory_sweep_csv,
    write_sweep_csv,
    write_table2_csv,
    write_timeline_csv,
)
from repro.analysis.sweeps import MemorySweepPoint, SweepPoint
from repro.core.types import ExecutionMode
from repro.sim import HadoopSimulator, wordcount_profile


def _read(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestWriters:
    def test_sweep_csv(self, tmp_path):
        path = write_sweep_csv(
            str(tmp_path / "sweep.csv"),
            "input_gb",
            [SweepPoint(2.0, 100.0, 80.0), SweepPoint(4.0, 150.0, 120.0)],
        )
        rows = _read(path)
        assert rows[0] == ["input_gb", "with_barrier_s", "without_barrier_s",
                           "improvement_pct"]
        assert rows[1][0] == "2.0"
        assert rows[1][3] == "20.00"
        assert len(rows) == 3

    def test_memory_sweep_marks_oom_as_empty(self, tmp_path):
        path = write_memory_sweep_csv(
            str(tmp_path / "mem.csv"),
            "reducers",
            [MemorySweepPoint(10.0, 500.0, None, 140.0, 450.0, 3000.0)],
        )
        rows = _read(path)
        assert rows[1][2] == ""  # inmemory_s empty on OOM
        assert rows[1][3] == "140.000"

    def test_timeline_csv_columns_are_stages(self, tmp_path):
        result = HadoopSimulator().run(
            wordcount_profile(2.0), 10, ExecutionMode.BARRIER
        )
        path = write_timeline_csv(str(tmp_path / "tl.csv"), result)
        rows = _read(path)
        assert rows[0] == ["time_s", "map", "shuffle", "sort", "reduce"]
        assert len(rows) > 10
        # counts are integers >= 0
        assert all(int(cell) >= 0 for cell in rows[1][1:])

    def test_boxplot_csv(self, tmp_path):
        path = write_boxplot_csv(
            str(tmp_path / "box.csv"), {"wc": [10.0, 20.0, 30.0]}
        )
        rows = _read(path)
        assert rows[1][0] == "wc"
        assert rows[1][3] == "20.00"  # median

    def test_table2_csv(self, tmp_path):
        path = write_table2_csv(str(tmp_path / "t2.csv"))
        rows = _read(path)
        assert len(rows) == 7  # header + six apps
        apps = {row[0] for row in rows[1:]}
        assert "Black-Scholes" in apps


class TestExportAll:
    def test_writes_every_experiment(self, tmp_path):
        written = export_all(str(tmp_path))
        names = {p.split("/")[-1] for p in written}
        assert {
            "fig6_sort.csv", "fig6_wc.csv", "fig6_knn.csv", "fig6_pp.csv",
            "fig6_ga.csv", "fig6_bs.csv", "fig7_boxplot.csv",
            "fig8_reducers.csv", "fig9_memory_vs_reducers.csv",
            "fig10_memory_vs_size.csv", "fig4_timeline_barrier.csv",
            "fig4_timeline_barrierless.csv", "table2_loc.csv",
        } == names
        for path in written:
            rows = _read(path)
            assert len(rows) >= 2, path
