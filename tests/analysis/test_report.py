"""Tests for the bench-output table renderers."""

from __future__ import annotations

from repro.analysis.report import render_memory_sweep, render_sweep, render_table
from repro.analysis.sweeps import MemorySweepPoint, SweepPoint


class TestRenderTable:
    def test_alignment_and_rule(self):
        rendered = render_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # All rows equal width.
        assert len({len(line.rstrip()) for line in lines[:1]}) == 1

    def test_empty_rows(self):
        rendered = render_table(("x",), [])
        assert "x" in rendered


class TestRenderSweep:
    def test_contains_improvement(self):
        points = [SweepPoint(2.0, 100.0, 80.0)]
        rendered = render_sweep("Fig", "GB", points)
        assert "Fig" in rendered
        assert "20.0%" in rendered

    def test_negative_improvement_rendered(self):
        points = [SweepPoint(2.0, 100.0, 109.0)]
        assert "-9.0%" in render_sweep("t", "x", points)


class TestRenderMemorySweep:
    def test_oom_marker(self):
        points = [
            MemorySweepPoint(10.0, 500.0, None, 140.0, 450.0, 3000.0),
            MemorySweepPoint(40.0, 360.0, 280.0, None, 300.0, 850.0),
        ]
        rendered = render_memory_sweep("Fig 9", "Reducers", points)
        assert "OOM@" in rendered
        assert "850.0" in rendered
