"""Tests for Table 2 LoC measurement."""

from __future__ import annotations

from repro.analysis.loc import (
    class_loc,
    effort_row,
    format_table_2,
    logical_lines,
    table_2,
)
from repro.apps.registry import by_short_name


class TestLogicalLines:
    def test_counts_code_only(self):
        source = '''
def f(x):
    """Docstring not counted."""
    # comment not counted
    return x + 1
'''
        assert logical_lines(source) == 2  # def + return

    def test_blank_lines_ignored(self):
        source = "def f():\n\n\n    return 1\n"
        assert logical_lines(source) == 2

    def test_multiline_statement_counts_each_physical_line(self):
        source = "x = (1 +\n     2)\n"
        assert logical_lines(source) == 2

    def test_class_docstrings_skipped(self):
        source = 'class A:\n    """doc"""\n    x = 1\n'
        assert logical_lines(source) == 2


class TestClassLoc:
    def test_deduplicates_classes(self):
        class A:
            pass

        assert class_loc([A, A]) == class_loc([A])

    def test_positive_for_real_classes(self):
        descriptor = by_short_name("wc")
        assert class_loc(descriptor.original) > 0


class TestTable2:
    def test_six_rows(self):
        rows = table_2()
        assert len(rows) == 6

    def test_flag_only_apps_have_zero_increase(self):
        # §6.4: "For Black-Scholes and the genetic algorithm, the only
        # change required was that a flag ... be turned on."
        by_name = {row.application: row for row in table_2()}
        assert by_name["Genetic Algorithm"].increase_pct == 0.0
        assert by_name["Black-Scholes"].increase_pct == 0.0

    def test_sort_has_largest_increase(self):
        # §6.4: the original sort is trivial (identity), so conversion
        # costs the most relative code.
        rows = table_2()
        sort_row = next(r for r in rows if r.application == "Sort")
        assert sort_row.increase_pct == max(r.increase_pct for r in rows)
        assert sort_row.increase_pct > 100.0

    def test_converted_apps_grow(self):
        # WordCount, kNN and Post Processing all require added partial-
        # result handling (paper: +20%, +10%, +25%).
        by_name = {row.application: row for row in table_2()}
        for app in ("WordCount", "k-Nearest Neighbors", "Last.fm Post Processing"):
            assert by_name[app].increase_pct > 0.0, app

    def test_format_contains_all_apps(self):
        rendered = format_table_2()
        for row in table_2():
            assert row.application in rendered

    def test_effort_row_consistency(self):
        descriptor = by_short_name("ga")
        row = effort_row(descriptor)
        assert row.original_loc == row.barrierless_loc
