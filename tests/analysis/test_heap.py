"""Tests for Figure 5 heap-trace extraction and rendering."""

from __future__ import annotations

import pytest

from repro.analysis.heap import ascii_heap_plot, heap_trace
from repro.core.types import ExecutionMode
from repro.sim.hadoop import HadoopSimulator, MemoryTechnique
from repro.sim.workload import wordcount_profile


@pytest.fixture(scope="module")
def sim():
    return HadoopSimulator()


@pytest.fixture(scope="module")
def inmemory_run(sim):
    return sim.run(
        wordcount_profile(16.0), 10, ExecutionMode.BARRIERLESS,
        MemoryTechnique("inmemory"),
    )


@pytest.fixture(scope="module")
def spill_run(sim):
    return sim.run(
        wordcount_profile(16.0), 10, ExecutionMode.BARRIERLESS,
        MemoryTechnique("spillmerge", spill_threshold_mb=240.0),
    )


class TestHeapTrace:
    def test_figure5a_oom(self, inmemory_run):
        # Figure 5(a): heap grows until the limit, then the job dies.
        trace = heap_trace(inmemory_run, reducer_id=0, limit_mb=1280.0)
        assert trace.failed
        assert trace.peak_mb() > 1280.0 * 0.8
        used = list(trace.used_mb)
        assert used == sorted(used)  # monotone growth, no spills

    def test_figure5b_sawtooth(self, spill_run):
        # Figure 5(b): heap sawtooths under the 240 MB threshold and the
        # job completes.
        trace = heap_trace(spill_run, reducer_id=0, limit_mb=1280.0)
        assert not trace.failed
        assert trace.peak_mb() < 1280.0 / 2
        used = list(trace.used_mb)
        drops = sum(1 for a, b in zip(used, used[1:]) if b < a)
        assert drops >= 3  # several spill resets

    def test_missing_reducer_raises(self, spill_run):
        with pytest.raises(KeyError):
            heap_trace(spill_run, reducer_id=999)

    def test_times_monotone(self, spill_run):
        trace = heap_trace(spill_run, reducer_id=3)
        assert list(trace.times) == sorted(trace.times)


class TestAsciiHeapPlot:
    def test_render(self, inmemory_run):
        trace = heap_trace(inmemory_run, reducer_id=0)
        rendered = ascii_heap_plot(trace)
        assert "#" in rendered
        assert "max heap" in rendered
        assert "KILLED" in rendered

    def test_render_success_status(self, spill_run):
        trace = heap_trace(spill_run, reducer_id=0)
        assert "completed" in ascii_heap_plot(trace)

    def test_empty_trace_rejected(self):
        from repro.analysis.heap import HeapTrace

        with pytest.raises(ValueError):
            ascii_heap_plot(
                HeapTrace(0, (), (), limit_mb=100.0, failed=False)
            )
