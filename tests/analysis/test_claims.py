"""Tests for the paper-claims scoreboard."""

from __future__ import annotations

import pytest

from repro.analysis.claims import (
    ClaimCheck,
    format_scoreboard,
    verify_paper_claims,
)


@pytest.fixture(scope="module")
def checks():
    return verify_paper_claims()


class TestVerifyPaperClaims:
    def test_all_claims_pass(self, checks):
        failed = [check for check in checks if not check.passed]
        assert not failed, [check.claim for check in failed]

    def test_covers_every_evaluation_section(self, checks):
        sources = {check.source for check in checks}
        for expected in ("Abstract", "§6.1.1", "§6.1.6", "§6.2/Fig 8",
                         "§6.3/Fig 9", "§6.4/Table 2"):
            assert expected in sources

    def test_at_least_fifteen_claims(self, checks):
        assert len(checks) >= 15

    def test_measured_values_populated(self, checks):
        for check in checks:
            assert check.measured
            assert check.expected


class TestFormatScoreboard:
    def test_renders_pass_fail_and_tally(self, checks):
        rendered = format_scoreboard(checks)
        assert "PASS" in rendered
        assert f"{len(checks)}/{len(checks)} claims reproduced" in rendered

    def test_renders_failures(self):
        fake = [
            ClaimCheck("§X", "made-up claim", "1", "2", False),
            ClaimCheck("§Y", "true claim", "3", "3", True),
        ]
        rendered = format_scoreboard(fake)
        assert "FAIL" in rendered
        assert "1/2 claims reproduced" in rendered
