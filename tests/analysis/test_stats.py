"""Tests for box-plot statistics (Figure 7 machinery)."""

from __future__ import annotations

import pytest

from repro.analysis.stats import (
    ascii_boxplot,
    best_case,
    five_number_summary,
    overall_average,
)


class TestFiveNumberSummary:
    def test_known_values(self):
        stats = five_number_summary("x", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.minimum == 1.0
        assert stats.median == 3.0
        assert stats.maximum == 5.0
        assert stats.q25 == 2.0
        assert stats.q75 == 4.0
        assert stats.mean == 3.0
        assert stats.n == 5

    def test_single_sample(self):
        stats = five_number_summary("x", [7.0])
        assert stats.minimum == stats.median == stats.maximum == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            five_number_summary("x", [])

    def test_quartiles_ordered(self):
        stats = five_number_summary("x", [9.0, 1.0, 5.0, 3.0, 7.0, 2.0])
        assert (
            stats.minimum <= stats.q25 <= stats.median <= stats.q75 <= stats.maximum
        )


class TestAggregates:
    def test_overall_average(self):
        samples = {"a": [10.0, 20.0], "b": [30.0, 40.0]}
        assert overall_average(samples) == pytest.approx(25.0)

    def test_best_case(self):
        samples = {"a": [10.0], "b": [87.0, 3.0]}
        assert best_case(samples) == pytest.approx(87.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            overall_average({})
        with pytest.raises(ValueError):
            best_case({"a": []})


class TestAsciiBoxplot:
    def test_contains_labels_and_markers(self):
        stats = [
            five_number_summary("wc", [10.0, 15.0, 20.0]),
            five_number_summary("bs", [50.0, 70.0, 87.0]),
        ]
        rendered = ascii_boxplot(stats)
        assert "wc" in rendered and "bs" in rendered
        assert ":" in rendered  # median marker
        assert "|" in rendered  # whiskers

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_boxplot([])

    def test_degenerate_distribution(self):
        rendered = ascii_boxplot([five_number_summary("x", [5.0, 5.0, 5.0])])
        assert "x" in rendered
