"""Tests for Figure 4 timeline extraction and rendering."""

from __future__ import annotations

import pytest

from repro.analysis.timeline import (
    BARRIER_STAGES,
    BARRIERLESS_STAGES,
    ascii_timeline,
    stage_summary,
    timeline,
)
from repro.core.types import ExecutionMode
from repro.sim.hadoop import HadoopSimulator
from repro.sim.workload import wordcount_profile


@pytest.fixture(scope="module")
def results():
    sim = HadoopSimulator()
    profile = wordcount_profile(3.0)
    return {
        mode: sim.run(profile, 40, mode) for mode in ExecutionMode
    }


class TestTimeline:
    def test_barrier_panel_stages(self, results):
        series = timeline(results[ExecutionMode.BARRIER])
        assert [s.stage for s in series] == list(BARRIER_STAGES)

    def test_barrierless_panel_stages(self, results):
        series = timeline(results[ExecutionMode.BARRIERLESS])
        assert [s.stage for s in series] == list(BARRIERLESS_STAGES)

    def test_map_concurrency_bounded_by_slots(self, results):
        series = timeline(results[ExecutionMode.BARRIER])
        map_series = next(s for s in series if s.stage == "map")
        assert 0 < map_series.peak() <= 60  # 60 map slots in the testbed

    def test_reduce_follows_sort_in_barrier_mode(self, results):
        series = {s.stage: s for s in timeline(results[ExecutionMode.BARRIER])}
        # First time reduce becomes active must not precede first sort
        # activity (the barrier's ordering).
        def first_active(s):
            for t, c in zip(s.times, s.counts):
                if c > 0:
                    return t
            return float("inf")

        assert first_active(series["reduce"]) >= first_active(series["sort"])

    def test_series_lengths_consistent(self, results):
        for s in timeline(results[ExecutionMode.BARRIER]):
            assert len(s.times) == len(s.counts)


class TestAsciiTimeline:
    def test_render_contains_legend(self, results):
        rendered = ascii_timeline(timeline(results[ExecutionMode.BARRIER]))
        assert "map" in rendered
        assert "+" in rendered  # axis

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_timeline([])


class TestStageSummary:
    def test_barrierless_finishes_soon_after_last_map(self, results):
        # §3.2: "the job finishes ... only 10 seconds after the final Map
        # task completes" — the pipelined job's tail is short relative to
        # the barrier version's shuffle+sort+reduce tail.
        bl = stage_summary(results[ExecutionMode.BARRIERLESS])
        barrier = stage_summary(results[ExecutionMode.BARRIER])
        bl_tail = bl["job_done"] - bl["last_map_done"]
        barrier_tail = barrier["job_done"] - barrier["last_map_done"]
        assert bl_tail < barrier_tail

    def test_summary_keys(self, results):
        summary = stage_summary(results[ExecutionMode.BARRIER])
        assert set(summary) == {
            "first_map_done",
            "last_map_done",
            "shuffle_done",
            "sort_done",
            "job_done",
            "mapper_slack",
        }

    def test_mapper_slack_nonnegative(self, results):
        for result in results.values():
            assert stage_summary(result)["mapper_slack"] >= 0.0
