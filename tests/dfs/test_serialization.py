"""Tests for the typed binary serialization substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfs.serialization import (
    SerializationError,
    decode,
    decode_varint,
    encode,
    encode_varint,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**31, 2**62])
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)

    def test_small_values_one_byte(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(SerializationError):
            decode_varint(b"\x80")  # continuation bit with no next byte

    @given(st.integers(min_value=0, max_value=2**64))
    def test_property_roundtrip(self, value):
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "obj",
        [
            None, True, False, 0, 1, -1, 10**18, -(10**18),
            0.0, 3.14159, float("inf"), -2.5e-300,
            "", "hello", "ünïcode ✓", b"", b"\x00\xff raw",
            (), (1, "two", 3.0), [1, [2, [3]]],
            {"a": 1, "b": [2, 3]}, frozenset({1, 2, 3}),
            ("word", 1), (("doc1", 3), ("doc2", 7)),
        ],
    )
    def test_roundtrip(self, obj):
        assert decode(encode(obj)) == obj

    def test_nan_roundtrip(self):
        import math

        assert math.isnan(decode(encode(float("nan"))))

    def test_compact_small_ints(self):
        assert len(encode(5)) == 2  # tag + varint

    def test_deterministic_dicts(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert encode(a) == encode(b)

    def test_deterministic_frozensets(self):
        assert encode(frozenset({3, 1, 2})) == encode(frozenset({2, 3, 1}))

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode(object())

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SerializationError):
            decode(encode(1) + b"junk")

    def test_truncated_rejected(self):
        payload = encode("a long enough string")
        with pytest.raises(SerializationError):
            decode(payload[:-3])

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            decode(b"\xfe")


# Recursive value strategy matching the supported shapes.
values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.tuples(children, children)
    | st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(values)
def test_property_roundtrip_arbitrary_values(obj):
    assert decode(encode(obj)) == obj
