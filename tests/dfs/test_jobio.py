"""Tests for file-backed job execution over the mini-DFS."""

from __future__ import annotations

import pytest

from repro.apps import wordcount
from repro.apps.lastfm import make_job as make_lastfm_job
from repro.core.types import ExecutionMode
from repro.dfs.inputformat import write_lines
from repro.dfs.jobio import (
    commit_output,
    read_output,
    run_sequence_job,
    run_text_job,
)
from repro.dfs.localdfs import DFSError, LocalDFS
from repro.dfs.sequencefile import SequenceFileReader, SequenceFileWriter
from repro.engine.local import LocalEngine


@pytest.fixture
def dfs(tmp_path):
    return LocalDFS(str(tmp_path), num_nodes=4, replication=2, chunk_size=256)


class TestTextJob:
    def test_wordcount_end_to_end(self, dfs):
        lines = ["spark fire spark"] * 20
        write_lines(dfs, "input.txt", lines)
        result = run_text_job(
            LocalEngine(),
            dfs,
            wordcount.make_job(ExecutionMode.BARRIERLESS, num_reducers=2),
            "input.txt",
            output_file="counts",
        )
        assert result.output_as_dict() == {"spark": 40, "fire": 20}
        assert read_output(dfs, "counts") == {"spark": 40, "fire": 20}

    def test_one_map_per_chunk(self, dfs):
        write_lines(dfs, "big.txt", [f"line {i} with words" for i in range(60)])
        chunks = len(dfs.manifest("big.txt").chunks)
        assert chunks > 1
        result = run_text_job(
            LocalEngine(),
            dfs,
            wordcount.make_job(ExecutionMode.BARRIER),
            "big.txt",
        )
        assert result.counters.get("map.tasks") == chunks

    def test_both_modes_agree_over_dfs(self, dfs):
        write_lines(dfs, "t.txt", [f"w{i % 7} w{i % 3}" for i in range(50)])
        outputs = []
        for mode in ExecutionMode:
            result = run_text_job(
                LocalEngine(), dfs, wordcount.make_job(mode), "t.txt"
            )
            outputs.append(result.output_as_dict())
        assert outputs[0] == outputs[1]


class TestSequenceJob:
    def test_lastfm_over_sequencefile(self, dfs):
        writer = SequenceFileWriter("listens", sync_interval=8)
        for i in range(100):
            writer.append(i, (f"track{i % 5}", f"user{i % 9}"))
        writer.store(dfs)
        result = run_sequence_job(
            LocalEngine(),
            dfs,
            make_lastfm_job(ExecutionMode.BARRIERLESS, num_reducers=2),
            "listens",
            output_file="unique",
        )
        out = read_output(dfs, "unique")
        assert out == result.output_as_dict()
        assert all(1 <= v <= 9 for v in out.values())


class TestOutputCommit:
    def test_one_part_per_reducer(self, dfs):
        write_lines(dfs, "i.txt", ["a b c"] * 10)
        result = run_text_job(
            LocalEngine(),
            dfs,
            wordcount.make_job(ExecutionMode.BARRIER, num_reducers=3),
            "i.txt",
        )
        parts = commit_output(dfs, result, "out")
        assert parts == [f"out-part-{i:05d}" for i in range(3)]
        total = sum(
            1 for part in parts for _ in SequenceFileReader(dfs, part)
        )
        assert total == 3  # a, b, c

    def test_existing_output_rejected(self, dfs):
        write_lines(dfs, "i.txt", ["x"])
        job = wordcount.make_job(ExecutionMode.BARRIER, num_reducers=1)
        run_text_job(LocalEngine(), dfs, job, "i.txt", output_file="out")
        with pytest.raises(DFSError):
            run_text_job(LocalEngine(), dfs, job, "i.txt", output_file="out")

    def test_read_output_missing_raises(self, dfs):
        with pytest.raises(DFSError):
            read_output(dfs, "never-written")
