"""Tests for line-record splits over chunked files."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import wordcount
from repro.core.types import ExecutionMode
from repro.dfs.inputformat import TextInputFormat, write_lines
from repro.dfs.localdfs import DFSError, LocalDFS
from repro.engine.local import LocalEngine


@pytest.fixture
def dfs(tmp_path):
    return LocalDFS(str(tmp_path), num_nodes=3, replication=2, chunk_size=32)


class TestSplits:
    def test_lines_keyed_by_offset(self, dfs):
        write_lines(dfs, "f", ["alpha", "beta"])
        records = TextInputFormat(dfs).read_all("f")
        assert records == [(0, "alpha"), (6, "beta")]

    def test_boundary_line_belongs_to_starting_split(self, dfs):
        # chunk_size=32: the second line starts in chunk 0 and ends in
        # chunk 1; it must appear exactly once, in split 0.
        lines = ["x" * 20, "y" * 20, "z" * 20]
        write_lines(dfs, "f", lines)
        splits = TextInputFormat(dfs).splits("f")
        all_lines = [line for split in splits for _, line in split]
        assert all_lines == lines
        assert [line for _, line in splits[0]] == ["x" * 20, "y" * 20]

    def test_line_longer_than_chunk(self, dfs):
        lines = ["a" * 100, "b"]
        write_lines(dfs, "f", lines)
        fmt = TextInputFormat(dfs)
        assert [line for _, line in fmt.read_all("f")] == lines
        splits = fmt.splits("f")
        # The giant line lives in split 0; middle chunks contribute nothing.
        assert [line for _, line in splits[0]] == ["a" * 100]
        assert sum(len(s) for s in splits[1:]) == 1

    def test_no_trailing_newline(self, dfs):
        dfs.put_text("f", "one\ntwo")  # unterminated final line
        records = TextInputFormat(dfs).read_all("f")
        assert [line for _, line in records] == ["one", "two"]

    def test_empty_file(self, dfs):
        dfs.put("f", b"")
        assert TextInputFormat(dfs).splits("f") == [[]]

    def test_write_lines_rejects_embedded_newlines(self, dfs):
        with pytest.raises(DFSError):
            write_lines(dfs, "f", ["bad\nline"])


@settings(max_examples=40, deadline=None)
@given(
    lines=st.lists(
        st.text(
            alphabet=st.characters(blacklist_characters="\n", max_codepoint=0x2FF),
            max_size=40,
        ),
        max_size=20,
    ),
    chunk_size=st.integers(4, 64),
)
def test_property_every_line_exactly_once(tmp_path_factory, lines, chunk_size):
    """The Hadoop split invariant: concatenated splits == the file's lines."""
    root = tmp_path_factory.mktemp("fmt")
    dfs = LocalDFS(str(root), num_nodes=3, replication=1, chunk_size=chunk_size)
    write_lines(dfs, "f", lines)
    records = TextInputFormat(dfs).read_all("f")
    assert [line for _, line in records] == lines
    offsets = [offset for offset, _ in records]
    assert offsets == sorted(offsets)
    assert len(set(offsets)) == len(offsets)


class TestEndToEndOverDFS:
    def test_wordcount_from_dfs_file(self, tmp_path):
        dfs = LocalDFS(str(tmp_path), num_nodes=4, replication=2, chunk_size=128)
        lines = [f"the quick brown fox line{i}" for i in range(20)]
        write_lines(dfs, "corpus", lines)
        pairs = TextInputFormat(dfs).read_all("corpus")
        result = LocalEngine().run(
            wordcount.make_job(ExecutionMode.BARRIERLESS), pairs, num_maps=4
        )
        out = result.output_as_dict()
        assert out["the"] == 20
        assert out["fox"] == 20
        assert out["line7"] == 1

    def test_wordcount_survives_dfs_node_loss(self, tmp_path):
        dfs = LocalDFS(str(tmp_path), num_nodes=4, replication=2, chunk_size=64)
        write_lines(dfs, "corpus", ["hello world"] * 30)
        dfs.kill_node(2)  # replication covers the loss
        pairs = TextInputFormat(dfs).read_all("corpus")
        result = LocalEngine().run(
            wordcount.make_job(ExecutionMode.BARRIER), pairs, num_maps=3
        )
        assert result.output_as_dict() == {"hello": 30, "world": 30}
