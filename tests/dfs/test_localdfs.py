"""Tests for the on-disk mini-DFS."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfs.localdfs import DFSError, LocalDFS


@pytest.fixture
def dfs(tmp_path):
    return LocalDFS(str(tmp_path), num_nodes=4, replication=2, chunk_size=64)


class TestBasics:
    def test_put_get_roundtrip(self, dfs):
        data = b"hello world" * 20
        dfs.put("f", data)
        assert dfs.get("f") == data

    def test_empty_file(self, dfs):
        dfs.put("empty", b"")
        assert dfs.get("empty") == b""

    def test_text_roundtrip(self, dfs):
        dfs.put_text("t", "héllo\nwörld")
        assert dfs.get_text("t") == "héllo\nwörld"

    def test_exists_and_list(self, dfs):
        assert not dfs.exists("a")
        dfs.put("a", b"x")
        dfs.put("b", b"y")
        assert dfs.exists("a")
        assert dfs.list_files() == ["a", "b"]

    def test_duplicate_name_rejected(self, dfs):
        dfs.put("f", b"1")
        with pytest.raises(DFSError):
            dfs.put("f", b"2")

    def test_invalid_names_rejected(self, dfs):
        with pytest.raises(DFSError):
            dfs.put("_meta", b"x")
        with pytest.raises(DFSError):
            dfs.put("a/b", b"x")

    def test_missing_file_raises(self, dfs):
        with pytest.raises(DFSError):
            dfs.get("ghost")

    def test_delete(self, dfs):
        dfs.put("f", b"data" * 100)
        dfs.delete("f")
        assert not dfs.exists("f")
        assert dfs.list_files() == []


class TestChunking:
    def test_chunk_count(self, dfs):
        dfs.put("f", b"x" * 200)  # 64-byte chunks -> 4 chunks (64*3=192, +8)
        manifest = dfs.manifest("f")
        assert len(manifest.chunks) == 4
        assert [c.size for c in manifest.chunks] == [64, 64, 64, 8]

    def test_replication_factor(self, dfs):
        dfs.put("f", b"x" * 100)
        for chunk in dfs.manifest("f").chunks:
            assert len(chunk.nodes) == 2
            assert len(set(chunk.nodes)) == 2

    def test_chunks_on_disk(self, dfs, tmp_path):
        dfs.put("f", b"x" * 100)
        chunk_files = [
            entry
            for node_dir in os.listdir(tmp_path)
            if node_dir.startswith("node-")
            for entry in os.listdir(tmp_path / node_dir)
        ]
        # 2 chunks x 2 replicas
        assert len(chunk_files) == 4

    def test_read_single_chunk(self, dfs):
        dfs.put("f", bytes(range(200)) )
        assert dfs.read_chunk("f", 1) == bytes(range(200))[64:128]

    def test_bad_chunk_index(self, dfs):
        dfs.put("f", b"x")
        with pytest.raises(DFSError):
            dfs.read_chunk("f", 5)


class TestDurability:
    def test_survives_single_node_loss(self, dfs):
        data = os.urandom(500)
        dfs.put("f", data)
        dfs.kill_node(1)
        assert dfs.get("f") == data

    def test_replication_1_does_not_survive(self, tmp_path):
        dfs = LocalDFS(str(tmp_path), num_nodes=3, replication=1, chunk_size=64)
        dfs.put("f", b"x" * 300)
        # Killing every node that holds a chunk must break the read.
        for node in range(3):
            dfs.kill_node(node)
        with pytest.raises(DFSError):
            dfs.get("f")

    def test_manifest_persists_across_instances(self, tmp_path):
        first = LocalDFS(str(tmp_path), num_nodes=3, replication=2, chunk_size=64)
        first.put("f", b"persistent data" * 10)
        second = LocalDFS(str(tmp_path), num_nodes=3, replication=2, chunk_size=64)
        assert second.get("f") == b"persistent data" * 10

    def test_kill_invalid_node(self, dfs):
        with pytest.raises(DFSError):
            dfs.kill_node(99)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"replication": 0},
            {"replication": 9},
            {"chunk_size": 0},
        ],
    )
    def test_bad_configs(self, tmp_path, kwargs):
        config = dict(num_nodes=4, replication=2, chunk_size=64)
        config.update(kwargs)
        with pytest.raises(ValueError):
            LocalDFS(str(tmp_path), **config)


@settings(max_examples=25, deadline=None)
@given(data=st.binary(max_size=2000), chunk_size=st.integers(1, 257))
def test_property_roundtrip_any_chunking(tmp_path_factory, data, chunk_size):
    root = tmp_path_factory.mktemp("dfs")
    dfs = LocalDFS(str(root), num_nodes=3, replication=2, chunk_size=chunk_size)
    dfs.put("f", data)
    assert dfs.get("f") == data
    manifest = dfs.manifest("f")
    assert sum(c.size for c in manifest.chunks) == len(data)
