"""Tests for the splittable SequenceFile container."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import wordcount
from repro.core.types import ExecutionMode
from repro.dfs.localdfs import LocalDFS
from repro.dfs.sequencefile import (
    SequenceFileError,
    SequenceFileReader,
    SequenceFileWriter,
)
from repro.engine.local import LocalEngine


@pytest.fixture
def dfs(tmp_path):
    return LocalDFS(str(tmp_path), num_nodes=3, replication=2, chunk_size=256)


class TestRoundtrip:
    def test_write_read(self, dfs):
        writer = SequenceFileWriter("data")
        records = [(f"key-{i}", {"count": i}) for i in range(50)]
        for key, value in records:
            writer.append(key, value)
        writer.store(dfs)
        assert list(SequenceFileReader(dfs, "data")) == records

    def test_empty_file(self, dfs):
        SequenceFileWriter("empty").store(dfs)
        assert list(SequenceFileReader(dfs, "empty")) == []

    def test_typed_keys_and_values(self, dfs):
        writer = SequenceFileWriter("typed")
        records = [
            (1, (1.5, "x")),
            (("composite", 2), [1, 2, 3]),
            ("s", frozenset({"u1", "u2"})),
        ]
        for key, value in records:
            writer.append(key, value)
        writer.store(dfs)
        assert list(SequenceFileReader(dfs, "typed")) == records

    def test_not_a_sequence_file(self, dfs):
        dfs.put("plain", b"just bytes, no magic")
        with pytest.raises(SequenceFileError):
            SequenceFileReader(dfs, "plain")

    def test_rejects_bad_sync_interval(self):
        with pytest.raises(ValueError):
            SequenceFileWriter("x", sync_interval=0)


class TestSplits:
    def test_splits_partition_records(self, dfs):
        writer = SequenceFileWriter("big", sync_interval=8)
        records = [(i, f"value-{i}" * 3) for i in range(300)]
        for key, value in records:
            writer.append(key, value)
        writer.store(dfs)
        reader = SequenceFileReader(dfs, "big")
        splits = reader.splits_by_chunk(dfs)
        assert len(splits) == len(dfs.manifest("big").chunks) > 1
        combined = [record for split in splits for record in split]
        assert sorted(combined) == sorted(records)

    def test_arbitrary_disjoint_ranges_partition(self, dfs):
        writer = SequenceFileWriter("r", sync_interval=4)
        records = [(i, i * i) for i in range(120)]
        for key, value in records:
            writer.append(key, value)
        writer.store(dfs)
        reader = SequenceFileReader(dfs, "r")
        size = len(dfs.get("r"))
        cut = size // 3
        parts = (
            list(reader.read_split(0, cut))
            + list(reader.read_split(cut, 2 * cut))
            + list(reader.read_split(2 * cut, size))
        )
        assert sorted(parts) == sorted(records)

    def test_mapreduce_over_sequencefile_splits(self, dfs):
        writer = SequenceFileWriter("corpus", sync_interval=4)
        for i in range(60):
            writer.append(i, "alpha beta alpha")
        writer.store(dfs)
        splits = SequenceFileReader(dfs, "corpus").splits_by_chunk(dfs)
        pairs = [record for split in splits for record in split]
        result = LocalEngine().run(
            wordcount.make_job(ExecutionMode.BARRIERLESS), pairs, num_maps=4
        )
        assert result.output_as_dict() == {"alpha": 120, "beta": 60}


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(0, 150),
    sync_interval=st.integers(1, 20),
    num_cuts=st.integers(1, 6),
)
def test_property_any_cut_partitions(tmp_path_factory, n, sync_interval, num_cuts):
    root = tmp_path_factory.mktemp("seq")
    dfs = LocalDFS(str(root), num_nodes=2, replication=1, chunk_size=128)
    writer = SequenceFileWriter("f", sync_interval=sync_interval)
    records = [(i, f"v{i}") for i in range(n)]
    for key, value in records:
        writer.append(key, value)
    writer.store(dfs)
    reader = SequenceFileReader(dfs, "f")
    size = len(dfs.get("f"))
    cuts = [0] + sorted((i + 1) * size // (num_cuts + 1) for i in range(num_cuts)) + [size]
    combined = []
    for start, end in zip(cuts, cuts[1:]):
        combined.extend(reader.read_split(start, end))
    assert sorted(combined) == sorted(records)
