"""Property-based fuzzing of the shuffle wire codec (repro.dfs.wire).

The invariants under test are the ones the shuffle's correctness rests
on: every encodable record batch round-trips bit-exactly through a frame
(nested containers, unicode edge cases, varint-boundary counts included),
and every malformed frame — truncated anywhere, corrupted anywhere —
raises :class:`SerializationError` instead of decoding garbage.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Record
from repro.dfs.serialization import SerializationError
from repro.dfs.wire import (
    WireConfig,
    decode_batch,
    decode_batches,
    decode_frame,
    encode_frame,
    encode_record_batches,
    read_frames,
    write_batch,
)

# NaN breaks equality-based round-trip assertions; the codec itself
# handles it (covered in test_serialization.py).  Ints stay inside the
# codec's 77-bit varint range — the limit itself is tested below.
_ints = st.integers(min_value=-(2**77 - 1), max_value=2**77 - 1)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    _ints,
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

#: Nested containers of scalars — tuples, lists and string-keyed dicts.
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

#: Keys must be hashable (they feed partitioners and dict-backed stores).
_keys = st.one_of(
    _ints,
    st.text(max_size=30),
    st.binary(max_size=30),
    st.tuples(st.text(max_size=10), _ints),
)

_records = st.lists(
    st.builds(Record, _keys, _values), max_size=20
)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(_records)
    def test_frame_roundtrip(self, records):
        config = WireConfig()
        batch = encode_frame(records, config)
        assert decode_batch(batch, config) == records
        assert batch.count == len(records)
        assert batch.raw_bytes >= 0

    @settings(max_examples=60, deadline=None)
    @given(_records, st.integers(min_value=1, max_value=7))
    def test_batched_roundtrip_respects_limits(self, records, max_records):
        config = WireConfig(max_batch_records=max_records)
        batches = encode_record_batches(records, config)
        assert decode_batches(batches, config) == records
        assert sum(batch.count for batch in batches) == len(records)
        for batch in batches:
            assert batch.count <= max_records
        # The reconciliation inequality the bench asserts fleet-wide.
        assert len(batches) * max_records >= len(records)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_records, max_size=5))
    def test_concatenated_frames_decode_in_sequence(self, batches):
        config = WireConfig()
        data = b"".join(
            encode_frame(records, config).frame for records in batches
        )
        offset = 0
        for records in batches:
            decoded, offset = decode_frame(data, offset)
            assert decoded == records
        assert offset == len(data)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_records, max_size=5))
    def test_frame_stream_roundtrip(self, batches):
        config = WireConfig()
        stream = io.BytesIO()
        for records in batches:
            write_batch(stream, encode_frame(records, config))
        stream.seek(0)
        decoded = [records for records in read_frames(stream)]
        assert decoded == [records for records in batches]

    @pytest.mark.parametrize("count", [0, 1, 127, 128, 300])
    def test_varint_boundary_record_counts(self, count):
        config = WireConfig(
            max_batch_records=1000, max_batch_bytes=1 << 24, compress=False
        )
        records = [Record(i, i) for i in range(count)]
        batch = encode_frame(records, config)
        assert decode_batch(batch, config) == records

    def test_unicode_edges(self):
        config = WireConfig()
        records = [
            Record("\x00", "embedded\x00null"),
            Record("surrogateless \U0001f600", "combining á"),
            Record("rtl ‮ txt", "￿ high BMP"),
        ]
        assert decode_batch(encode_frame(records, config), config) == records


class TestMalformedFrames:
    @settings(max_examples=80, deadline=None)
    @given(_records, st.data())
    def test_truncation_never_decodes(self, records, data):
        frame = encode_frame(records, WireConfig()).frame
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(SerializationError):
            decode_frame(frame[:cut])

    @settings(max_examples=120, deadline=None)
    @given(_records, st.data())
    def test_corruption_never_decodes_garbage(self, records, data):
        """A flipped byte anywhere is caught (CRC covers header+payload).

        The corrupted frame must either raise or — never — decode to
        something other than the original records.  A CRC32 collision is
        the only escape and hypothesis cannot find one.
        """
        frame = encode_frame(records, WireConfig()).frame
        index = data.draw(
            st.integers(min_value=0, max_value=len(frame) - 1)
        )
        flip = data.draw(st.integers(min_value=1, max_value=255))
        corrupted = bytearray(frame)
        corrupted[index] ^= flip
        with pytest.raises(SerializationError):
            decode_frame(bytes(corrupted))

    def test_unknown_flags_rejected(self):
        frame = bytearray(encode_frame([Record("k", 1)], WireConfig()).frame)
        with pytest.raises(SerializationError, match="unknown frame flags"):
            decode_frame(bytes(bytearray([0x80]) + frame[1:]))

    def test_pickled_frame_requires_opt_in(self):
        pickle_config = WireConfig(codec="pickle")
        batch = encode_frame([Record("k", 1)], pickle_config)
        with pytest.raises(SerializationError, match="pickled frame"):
            decode_frame(batch.frame)  # typed codec never auto-accepts
        records, _ = decode_frame(batch.frame, allow_pickle=True)
        assert records == [Record("k", 1)]
        with pytest.raises(SerializationError):
            decode_batch(batch, WireConfig())  # codec="wire" config

    def test_empty_input_rejected(self):
        with pytest.raises(SerializationError):
            decode_frame(b"")

    @settings(max_examples=40, deadline=None)
    @given(_records, st.integers(min_value=1, max_value=8))
    def test_truncated_stream_raises_midframe(self, records, drop):
        config = WireConfig()
        frame = encode_frame(records, config).frame
        stream = io.BytesIO(frame[: max(1, len(frame) - drop)])
        with pytest.raises(SerializationError):
            list(read_frames(stream))

    def test_oversized_int_rejected_at_encode_time(self):
        """Found by this fuzz suite: the encoder used to emit varints the
        decoder's 77-bit cap rejects, producing frames that could never
        be read back.  Oversized ints must fail at encode time instead.
        """
        config = WireConfig()
        with pytest.raises(SerializationError):
            encode_frame([Record(2**77, None)], config)
        boundary = [Record(2**77 - 1, -(2**77 - 1))]
        assert decode_batch(encode_frame(boundary, config), config) == boundary

    def test_disabled_codec_cannot_encode(self):
        off = WireConfig(codec="off")
        with pytest.raises(SerializationError):
            encode_frame([Record("k", 1)], off)
        with pytest.raises(SerializationError):
            encode_record_batches([Record("k", 1)], off)
