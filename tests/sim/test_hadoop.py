"""Tests for the simulated Hadoop: invariants and §6 behaviours."""

from __future__ import annotations

import pytest

from repro.core.types import ExecutionMode
from repro.sim.cluster import ClusterSpec
from repro.sim.hadoop import HadoopSimulator, MemoryTechnique, improvement_percent
from repro.sim.workload import (
    blackscholes_profile,
    genetic_profile,
    sort_profile,
    wordcount_profile,
)


@pytest.fixture(scope="module")
def sim() -> HadoopSimulator:
    return HadoopSimulator(ClusterSpec())


class TestMapStage:
    def test_map_count_matches_profile(self, sim):
        result = sim.run(wordcount_profile(2.0), 10, ExecutionMode.BARRIER)
        assert len(result.map_finish_times) == wordcount_profile(2.0).num_maps
        assert len(result.task_log.events("map")) == result.task_log.events(
            "map"
        ).__len__()

    def test_map_waves_when_tasks_exceed_slots(self, sim):
        # 16 GB = 256 maps on 60 slots: last map ends well after the first.
        result = sim.run(wordcount_profile(16.0), 10, ExecutionMode.BARRIER)
        st = result.stage_times
        assert st.last_map_done > 2.5 * st.first_map_done

    def test_single_wave_when_tasks_fit(self, sim):
        # 2 GB = 32 maps on 60 slots: finish times spread only by
        # heterogeneity.
        result = sim.run(wordcount_profile(2.0), 10, ExecutionMode.BARRIER)
        st = result.stage_times
        assert st.last_map_done < 1.6 * st.first_map_done

    def test_finish_times_sorted(self, sim):
        result = sim.run(wordcount_profile(4.0), 10, ExecutionMode.BARRIER)
        times = result.map_finish_times
        assert times == sorted(times)


class TestStageOrdering:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_stage_times_monotone(self, sim, mode):
        result = sim.run(wordcount_profile(4.0), 20, mode)
        st = result.stage_times
        assert 0 <= st.first_map_done <= st.last_map_done
        assert st.shuffle_done >= st.first_map_done
        assert st.job_done >= st.shuffle_done
        assert result.completion_time == st.job_done

    def test_barrier_has_sort_stage(self, sim):
        result = sim.run(wordcount_profile(2.0), 10, ExecutionMode.BARRIER)
        assert result.task_log.events("sort")
        assert result.stage_times.sort_done > result.stage_times.shuffle_done

    def test_barrierless_has_no_sort_stage(self, sim):
        result = sim.run(wordcount_profile(2.0), 10, ExecutionMode.BARRIERLESS)
        assert not result.task_log.events("sort")
        assert result.task_log.events("shuffle+reduce")

    def test_reduce_cannot_finish_before_last_map(self, sim):
        for mode in ExecutionMode:
            result = sim.run(wordcount_profile(2.0), 10, mode)
            assert result.completion_time >= result.stage_times.last_map_done


class TestBarrierVsBarrierless:
    def test_pipelining_wins_for_aggregation(self, sim):
        barrier = sim.run(wordcount_profile(8.0), 40, ExecutionMode.BARRIER)
        barrierless = sim.run(wordcount_profile(8.0), 40, ExecutionMode.BARRIERLESS)
        assert barrierless.completion_time < barrier.completion_time

    def test_sort_is_the_degenerate_case(self, sim):
        # §6.1.1: barrier-less sort is slightly SLOWER.
        barrier = sim.run(sort_profile(8.0), 40, ExecutionMode.BARRIER)
        barrierless = sim.run(sort_profile(8.0), 40, ExecutionMode.BARRIERLESS)
        assert barrierless.completion_time > barrier.completion_time
        slowdown = -improvement_percent(
            barrier.completion_time, barrierless.completion_time
        )
        assert 0 < slowdown < 15.0  # paper: up to 9%

    def test_blackscholes_is_best_case(self, sim):
        barrier = sim.run(blackscholes_profile(100), 1, ExecutionMode.BARRIER)
        barrierless = sim.run(blackscholes_profile(100), 1, ExecutionMode.BARRIERLESS)
        assert improvement_percent(
            barrier.completion_time, barrierless.completion_time
        ) > 50.0

    def test_completion_monotone_in_input_size(self, sim):
        times = [
            sim.run(wordcount_profile(gb), 40, ExecutionMode.BARRIERLESS).completion_time
            for gb in (2.0, 4.0, 8.0, 16.0)
        ]
        assert times == sorted(times)

    def test_mapper_slack_positive(self, sim):
        result = sim.run(wordcount_profile(4.0), 40, ExecutionMode.BARRIER)
        assert result.mapper_slack > 0


class TestReducerWaves:
    def test_second_wave_increases_completion(self, sim):
        profile = genetic_profile(150)
        at_capacity = sim.run(profile, 60, ExecutionMode.BARRIER)
        over_capacity = sim.run(profile, 70, ExecutionMode.BARRIER)
        assert over_capacity.completion_time > at_capacity.completion_time

    def test_wave_two_reducers_start_later(self, sim):
        result = sim.run(genetic_profile(150), 70, ExecutionMode.BARRIER)
        starts = {t.reducer_id: t.start for t in result.reducers}
        assert starts[0] == 0.0
        assert starts[65] > 0.0  # second wave


class TestMemoryTechniques:
    def test_inmemory_oom_kills_job(self, sim):
        result = sim.run(
            wordcount_profile(16.0), 10, ExecutionMode.BARRIERLESS,
            MemoryTechnique("inmemory"),
        )
        assert result.failed
        assert result.failure_time is not None
        assert result.failure_time < result.stage_times.last_map_done * 3
        assert "heap" in result.failure_reason

    def test_spillmerge_survives_where_inmemory_dies(self, sim):
        spill = sim.run(
            wordcount_profile(16.0), 10, ExecutionMode.BARRIERLESS,
            MemoryTechnique("spillmerge", spill_threshold_mb=240.0),
        )
        assert not spill.failed
        assert spill.reducers[0].spills > 0

    def test_spill_keeps_heap_under_thresholdish(self, sim):
        result = sim.run(
            wordcount_profile(16.0), 10, ExecutionMode.BARRIERLESS,
            MemoryTechnique("spillmerge", spill_threshold_mb=240.0),
        )
        peak_mb = max(h for _, h in result.reducers[0].heap_samples) / (1 << 20)
        assert peak_mb < 2 * 240.0

    def test_kvstore_slowest(self, sim):
        profile = wordcount_profile(8.0)
        barrier = sim.run(profile, 40, ExecutionMode.BARRIER)
        kv = sim.run(
            profile, 40, ExecutionMode.BARRIERLESS, MemoryTechnique("kvstore")
        )
        assert kv.completion_time > barrier.completion_time

    def test_unbounded_never_fails(self, sim):
        result = sim.run(wordcount_profile(16.0), 5, ExecutionMode.BARRIERLESS)
        assert not result.failed

    def test_heap_samples_recorded(self, sim):
        result = sim.run(
            wordcount_profile(4.0), 20, ExecutionMode.BARRIERLESS,
            MemoryTechnique("inmemory"),
        )
        samples = result.reducers[0].heap_samples
        assert len(samples) == len(result.map_finish_times)
        times = [t for t, _ in samples]
        assert times == sorted(times)

    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError):
            MemoryTechnique("mongodb")


class TestDeterminism:
    def test_same_spec_same_result(self):
        a = HadoopSimulator(ClusterSpec(seed=9)).run(
            wordcount_profile(4.0), 20, ExecutionMode.BARRIER
        )
        b = HadoopSimulator(ClusterSpec(seed=9)).run(
            wordcount_profile(4.0), 20, ExecutionMode.BARRIER
        )
        assert a.completion_time == b.completion_time
        assert a.map_finish_times == b.map_finish_times

    def test_different_seed_different_heterogeneity(self):
        a = HadoopSimulator(ClusterSpec(seed=1)).run(
            wordcount_profile(4.0), 20, ExecutionMode.BARRIER
        )
        b = HadoopSimulator(ClusterSpec(seed=2)).run(
            wordcount_profile(4.0), 20, ExecutionMode.BARRIER
        )
        assert a.completion_time != b.completion_time


class TestImprovementPercent:
    def test_positive_when_faster(self):
        assert improvement_percent(100.0, 75.0) == pytest.approx(25.0)

    def test_negative_when_slower(self):
        assert improvement_percent(100.0, 109.0) == pytest.approx(-9.0)

    def test_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)

    def test_rejects_nonpositive_reducers(self, sim):
        with pytest.raises(ValueError):
            sim.run(wordcount_profile(2.0), 0, ExecutionMode.BARRIER)
