"""Tests for the discrete-event core."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import SimulationError, Simulator, SlotPool


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 10]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), max_size=50))
    def test_property_monotonic_time(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


class TestSlotPool:
    def test_grants_up_to_capacity(self):
        sim = Simulator()
        pool = SlotPool(sim, capacity=2)
        granted = []
        pool.acquire(lambda: granted.append("a"))
        pool.acquire(lambda: granted.append("b"))
        pool.acquire(lambda: granted.append("c"))
        sim.run()
        assert granted == ["a", "b"]
        assert pool.queued == 1

    def test_release_wakes_fifo(self):
        sim = Simulator()
        pool = SlotPool(sim, capacity=1)
        granted = []
        pool.acquire(lambda: granted.append("first"))
        pool.acquire(lambda: granted.append("second"))
        pool.acquire(lambda: granted.append("third"))
        sim.run()
        pool.release()
        sim.run()
        assert granted == ["first", "second"]
        pool.release()
        sim.run()
        assert granted == ["first", "second", "third"]

    def test_release_without_hold_raises(self):
        sim = Simulator()
        pool = SlotPool(sim, capacity=1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SlotPool(Simulator(), capacity=0)

    def test_in_use_accounting(self):
        sim = Simulator()
        pool = SlotPool(sim, capacity=3)
        pool.acquire(lambda: None)
        pool.acquire(lambda: None)
        sim.run()
        assert pool.in_use == 2
        pool.release()
        assert pool.in_use == 1
