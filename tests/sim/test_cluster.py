"""Tests for the cluster hardware model."""

from __future__ import annotations

import pytest

from repro.sim.cluster import ClusterSpec, paper_testbed


class TestClusterSpec:
    def test_paper_testbed_matches_section_6(self):
        spec = paper_testbed()
        # "A single node was configured to be the JobTracker ... and the
        # other 15 nodes were used as slaves.  The number of mappers and
        # Reducers per node was set to 4."
        assert spec.num_slaves == 15
        assert spec.map_slots_per_node == 4
        assert spec.reduce_slots_per_node == 4
        assert spec.total_map_slots == 60
        assert spec.total_reduce_slots == 60
        assert spec.chunk_mb == 64.0
        assert spec.replication == 3

    def test_nodes_deterministic_under_seed(self):
        a = ClusterSpec(seed=1).nodes()
        b = ClusterSpec(seed=1).nodes()
        assert [n.speed_factor for n in a] == [n.speed_factor for n in b]

    def test_heterogeneity_spreads_speeds(self):
        nodes = ClusterSpec(heterogeneity=0.15, seed=2).nodes()
        speeds = [n.speed_factor for n in nodes]
        assert max(speeds) > min(speeds)
        assert all(0.5 <= s <= 1.5 for s in speeds)

    def test_zero_heterogeneity_uniform(self):
        nodes = ClusterSpec(heterogeneity=0.0).nodes()
        assert all(n.speed_factor == pytest.approx(1.0) for n in nodes)

    def test_shuffle_bandwidth_oversubscribed(self):
        spec = ClusterSpec(net_mb_s=100.0, oversubscription=2.0)
        assert spec.shuffle_mb_s == pytest.approx(50.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_slaves": 0},
            {"map_slots_per_node": 0},
            {"reduce_slots_per_node": -1},
            {"oversubscription": 0.5},
            {"heterogeneity": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)
