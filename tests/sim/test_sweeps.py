"""Tests asserting the paper's evaluation *shapes* hold in the sweeps.

Each test encodes one claim from §6 as an assertion over the regenerated
series.  These are the contract between this reproduction and the paper.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.sweeps import (
    figure6_series,
    figure7_samples,
    figure8_series,
    figure9_series,
    figure10_series,
)


@pytest.fixture(scope="module")
def fig6():
    return figure6_series()


@pytest.fixture(scope="module")
def fig7(fig6):
    return {
        app: [point.improvement_pct for point in series]
        for app, series in fig6.items()
    }


class TestFigure6Claims:
    def test_sort_slight_slowdown(self, fig7):
        # §6.1.1: "slight slowdowns ... up to 9% in the 8GB case".
        assert all(-15.0 < x < 0.0 for x in fig7["sort"])

    def test_wordcount_average_around_15pct(self, fig7):
        # §6.1.2: "an average of 15% decrease in job completion times".
        assert 10.0 <= statistics.mean(fig7["wc"]) <= 25.0

    def test_knn_average_around_18pct(self, fig7):
        # §6.1.3: "an average decrease of 18%".
        assert 12.0 <= statistics.mean(fig7["knn"]) <= 30.0

    def test_knn_improvement_increases_with_size(self, fig7):
        # §6.1.3: "This improvement slowly increased as the dataset size
        # was increased".
        assert fig7["knn"][-1] > fig7["knn"][0]

    def test_lastfm_consistent_20pct(self, fig7):
        # §6.1.4: "we consistently observed a 20% decrease".
        assert 12.0 <= statistics.mean(fig7["pp"]) <= 30.0

    def test_ga_benefit_about_15pct_and_stable(self, fig7):
        # §6.1.5: "a benefit of about 15%, which stays relatively constant".
        samples = fig7["ga"]
        assert 10.0 <= statistics.mean(samples) <= 22.0
        assert max(samples) - min(samples) < 10.0

    def test_blackscholes_best_case(self, fig7):
        # §6.1.6: "average benefit of about 56% ... maximum ... 87%".
        samples = fig7["bs"]
        assert statistics.mean(samples) > 45.0
        assert max(samples) > 75.0

    def test_blackscholes_improvement_grows(self, fig7):
        # §6.1.6: "continued to increase as the number of iterations
        # increased".
        samples = fig7["bs"]
        assert samples[-1] > samples[0]
        assert all(b >= a - 1e-9 for a, b in zip(samples, samples[1:]))

    def test_completion_times_grow_with_size(self, fig6):
        for app in ("sort", "wc", "knn", "pp"):
            barrier = [p.barrier_s for p in fig6[app]]
            assert barrier == sorted(barrier), app


class TestFigure7Claims:
    def test_overall_average_about_25pct(self):
        # Abstract: "a reduction in job completion times that is 25% on
        # average" (non-sort apps pull the mean up; sort pulls it down).
        samples = figure7_samples()
        flat = [x for values in samples.values() for x in values]
        assert 18.0 <= statistics.mean(flat) <= 35.0

    def test_best_case_is_blackscholes(self):
        samples = figure7_samples()
        best_app = max(samples, key=lambda app: max(samples[app]))
        assert best_app == "bs"
        assert max(samples["bs"]) > 75.0  # paper: 87%

    def test_sort_is_worst_case(self):
        samples = figure7_samples()
        worst_app = min(samples, key=lambda app: statistics.mean(samples[app]))
        assert worst_app == "sort"


class TestFigure8Claims:
    @pytest.fixture(scope="class")
    def series(self):
        return figure8_series()

    def test_barrier_time_decreases_toward_capacity(self, series):
        # 30 -> 60 reducers: completion time decreases as utilisation rises.
        up_to_capacity = [p.barrier_s for p in series if p.x <= 60]
        assert up_to_capacity == sorted(up_to_capacity, reverse=True)

    def test_time_jumps_past_capacity(self, series):
        # 70 reducers on 60 slots: a second wave raises completion time.
        at_60 = next(p for p in series if p.x == 60)
        at_70 = next(p for p in series if p.x == 70)
        assert at_70.barrier_s > at_60.barrier_s
        assert at_70.barrierless_s > at_60.barrierless_s

    def test_improvement_shrinks_with_utilisation(self, series):
        # "our improvement over the barrier version decreased somewhat"
        imps = {p.x: p.improvement_pct for p in series}
        assert imps[30] > imps[40] > imps[50] > imps[60]

    def test_improvement_recovers_past_capacity(self, series):
        # "once the system becomes over-saturated ... our improvement also
        # increased."
        imps = {p.x: p.improvement_pct for p in series}
        assert imps[70] > imps[60]


class TestFigure9Claims:
    @pytest.fixture(scope="class")
    def series(self):
        return figure9_series()

    def test_inmemory_fails_below_25_reducers(self, series):
        # §6.3: "as the number of Reducers was decreased below 25, the
        # in-memory technique resulted in an out of memory exception".
        for point in series:
            if point.x < 25:
                assert point.inmemory_s is None, point.x
            else:
                assert point.inmemory_s is not None, point.x

    def test_spillmerge_beats_barrier_everywhere(self, series):
        # "The spill and merge technique continued to perform better than
        # the original MapReduce."
        for point in series:
            assert point.spillmerge_s < point.barrier_s, point.x

    def test_spillmerge_slightly_worse_than_inmemory(self, series):
        # "The disk spill and merge scheme performed slightly worse than
        # storing the partial results in memory."
        for point in series:
            if point.inmemory_s is not None:
                assert point.spillmerge_s >= point.inmemory_s, point.x

    def test_kvstore_worst_everywhere(self, series):
        # "BerkeleyDB on the other hand, performed poorly."
        for point in series:
            assert point.kvstore_s > point.barrier_s, point.x
            assert point.kvstore_s > point.spillmerge_s, point.x


class TestFigure10Claims:
    @pytest.fixture(scope="class")
    def series(self):
        return figure10_series()

    def test_barrierless_variants_beat_barrier_at_scale(self, series):
        # "as the dataset increases, both the disk spill and merge, and the
        # in-memory barrier-less versions, outperformed the original".
        for point in series:
            if point.x >= 4.0:
                assert point.spillmerge_s < point.barrier_s, point.x
                if point.inmemory_s is not None:
                    assert point.inmemory_s < point.barrier_s, point.x

    def test_kvstore_cannot_keep_up(self, series):
        # "the BerkeleyDB key/value store can not keep up with the high
        # frequency of record accesses."
        for point in series:
            assert point.kvstore_s > point.barrier_s, point.x

    def test_times_grow_with_size(self, series):
        barrier = [p.barrier_s for p in series]
        assert barrier == sorted(barrier)
