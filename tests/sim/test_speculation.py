"""Tests for speculative execution (backup tasks for stragglers)."""

from __future__ import annotations

import pytest

from repro.core.types import ExecutionMode
from repro.sim import ClusterSpec, HadoopSimulator, NodeFailure, wordcount_profile


def _sim(speculative: bool, heterogeneity: float = 0.3, seed: int = 5):
    return HadoopSimulator(
        ClusterSpec(
            heterogeneity=heterogeneity,
            speculative_execution=speculative,
            seed=seed,
        )
    )


class TestSpeculativeExecution:
    def test_off_by_default(self):
        result = HadoopSimulator().run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER
        )
        assert result.speculative_attempts == 0

    def test_backups_cut_the_straggler_tail(self):
        profile = wordcount_profile(8.0)
        plain = _sim(False).run(profile, 40, ExecutionMode.BARRIER)
        spec = _sim(True).run(profile, 40, ExecutionMode.BARRIER)
        assert spec.speculative_attempts > 0
        assert (
            spec.stage_times.last_map_done < plain.stage_times.last_map_done
        )
        assert spec.completion_time < plain.completion_time

    def test_wins_bounded_by_attempts(self):
        result = _sim(True).run(wordcount_profile(8.0), 40, ExecutionMode.BARRIER)
        assert 0 <= result.speculative_wins <= result.speculative_attempts

    def test_every_map_completes_exactly_once(self):
        profile = wordcount_profile(8.0)
        result = _sim(True).run(profile, 40, ExecutionMode.BARRIER)
        assert len(result.map_finish_times) == profile.num_maps

    def test_homogeneous_cluster_rarely_speculates(self):
        # With identical nodes the only backups worth launching are
        # local-read copies of remote-read tasks — a handful at most.
        profile = wordcount_profile(8.0)
        sim = HadoopSimulator(
            ClusterSpec(heterogeneity=0.0, speculative_execution=True)
        )
        result = sim.run(profile, 40, ExecutionMode.BARRIER)
        assert result.speculative_attempts <= profile.num_maps * 0.1

    def test_composes_with_node_failure(self):
        profile = wordcount_profile(8.0)
        result = _sim(True).run(
            profile, 40, ExecutionMode.BARRIER, failure=NodeFailure(2, 40.0)
        )
        assert len(result.map_finish_times) == profile.num_maps
        assert result.reexecuted_maps > 0

    def test_deterministic(self):
        profile = wordcount_profile(8.0)
        a = _sim(True).run(profile, 40, ExecutionMode.BARRIER)
        b = _sim(True).run(profile, 40, ExecutionMode.BARRIER)
        assert a.completion_time == b.completion_time
        assert a.speculative_attempts == b.speculative_attempts
