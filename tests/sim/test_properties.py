"""Property-based tests: simulator invariants over random configurations.

Hypothesis drives the simulator across a wide space of cluster shapes and
job profiles, asserting the structural invariants that must hold for
*any* configuration — conservation of tasks, monotone stage ordering,
non-negative times, and the defining semantic difference between the two
execution modes.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import ExecutionMode, ReduceClass
from repro.sim.cluster import ClusterSpec
from repro.sim.hadoop import HadoopSimulator, MemoryTechnique
from repro.sim.workload import JobProfile, MemoryProfile

cluster_specs = st.builds(
    ClusterSpec,
    num_slaves=st.integers(2, 20),
    map_slots_per_node=st.integers(1, 6),
    reduce_slots_per_node=st.integers(1, 6),
    heterogeneity=st.floats(0.0, 0.3),
    oversubscription=st.floats(1.0, 4.0),
    replication=st.integers(1, 3),
    speculative_execution=st.booleans(),
    seed=st.integers(0, 10_000),
)

job_profiles = st.builds(
    JobProfile,
    name=st.just("prop"),
    reduce_class=st.sampled_from(list(ReduceClass)),
    num_maps=st.integers(1, 120),
    map_input_mb_per_task=st.floats(0.1, 128.0),
    map_cpu_s_per_task=st.floats(0.1, 120.0),
    map_output_mb_per_task=st.floats(0.1, 128.0),
    reduce_cpu_s_per_mb=st.floats(0.0, 1.0),
    sort_cpu_s_per_mb=st.floats(0.0, 1.0),
    store_cpu_s_per_mb=st.floats(0.0, 1.0),
    sweep_s_per_mb=st.floats(0.0, 0.2),
    final_output_mb=st.floats(0.0, 4096.0),
    record_bytes=st.floats(8.0, 512.0),
)


@settings(max_examples=40, deadline=None)
@given(cluster=cluster_specs, profile=job_profiles, reducers=st.integers(1, 80))
def test_property_structural_invariants(cluster, profile, reducers):
    sim = HadoopSimulator(cluster)
    for mode in ExecutionMode:
        result = sim.run(profile, reducers, mode)
        # Conservation: every map task finishes exactly once.
        assert len(result.map_finish_times) == profile.num_maps
        assert result.locality.total >= profile.num_maps
        # Monotone stage ordering.
        st_ = result.stage_times
        assert 0.0 <= st_.first_map_done <= st_.last_map_done
        assert st_.shuffle_done >= st_.first_map_done - 1e-9
        assert result.completion_time >= st_.last_map_done - 1e-9
        assert result.completion_time >= st_.shuffle_done - 1e-9
        assert math.isfinite(result.completion_time)
        # Every reducer trace is internally ordered.
        for trace in result.reducers:
            assert trace.start <= trace.shuffle_done + 1e-9
            assert trace.shuffle_done <= trace.sort_done + 1e-9
            assert trace.sort_done <= trace.finish + 1e-9
        assert not result.failed  # unbounded technique never OOMs


@settings(max_examples=30, deadline=None)
@given(profile=job_profiles, reducers=st.integers(1, 60))
def test_property_barrier_always_sorts_after_shuffle(profile, reducers):
    sim = HadoopSimulator(ClusterSpec())
    barrier = sim.run(profile, reducers, ExecutionMode.BARRIER)
    barrierless = sim.run(profile, reducers, ExecutionMode.BARRIERLESS)
    # In barrier mode sorting takes time whenever the sort work amounts
    # to something representable (guard against denormal-float configs
    # whose sort time underflows addition).
    assert barrier.stage_times.sort_done >= barrier.stage_times.shuffle_done
    sort_work = (
        profile.sort_cpu_s_per_mb * profile.total_map_output_mb / reducers
    )
    if sort_work > 1e-6:
        assert barrier.stage_times.sort_done > barrier.stage_times.shuffle_done
    # Barrier-less mode never has a distinct sort interval.
    assert (
        barrierless.stage_times.sort_done == barrierless.stage_times.shuffle_done
    )
    # With zero store overhead, pipelining can never lose: the barrier-less
    # reducer does the same reduce CPU but overlapped with arrival.
    if profile.store_cpu_s_per_mb == 0 and profile.sweep_s_per_mb == 0:
        assert (
            barrierless.completion_time <= barrier.completion_time + 1e-6
        )


@settings(max_examples=25, deadline=None)
@given(
    profile=job_profiles,
    reducers=st.integers(1, 40),
    threshold=st.floats(10.0, 500.0),
)
def test_property_spill_keeps_heap_bounded(profile, reducers, threshold):
    sim = HadoopSimulator(ClusterSpec())
    result = sim.run(
        profile,
        reducers,
        ExecutionMode.BARRIERLESS,
        MemoryTechnique("spillmerge", spill_threshold_mb=threshold),
    )
    assert not result.failed
    for trace in result.reducers:
        if trace.heap_samples:
            peak_mb = max(b for _, b in trace.heap_samples) / (1 << 20)
            # One chunk's worth of growth may overshoot the threshold
            # before the spill triggers; it must stay the same order.
            assert peak_mb <= 3 * threshold + 64.0


@settings(max_examples=25, deadline=None)
@given(cluster=cluster_specs, profile=job_profiles)
def test_property_determinism(cluster, profile):
    a = HadoopSimulator(cluster).run(profile, 8, ExecutionMode.BARRIER)
    b = HadoopSimulator(cluster).run(profile, 8, ExecutionMode.BARRIER)
    assert a.completion_time == b.completion_time
    assert a.map_finish_times == b.map_finish_times


@settings(max_examples=25, deadline=None)
@given(
    num_maps=st.integers(1, 100),
    cpu=st.floats(1.0, 60.0),
    reducers=st.integers(1, 40),
)
def test_property_more_maps_never_faster(num_maps, cpu, reducers):
    def profile(n):
        return JobProfile(
            "mono", ReduceClass.AGGREGATION, n, 64.0, cpu, 16.0,
            0.1, 0.2, 0.1, 0.01, 10.0, 32.0,
            MemoryProfile(ReduceClass.AGGREGATION),
        )

    sim = HadoopSimulator(ClusterSpec(heterogeneity=0.0))
    small = sim.run(profile(num_maps), reducers, ExecutionMode.BARRIER)
    large = sim.run(profile(num_maps + 10), reducers, ExecutionMode.BARRIER)
    assert large.completion_time >= small.completion_time - 1e-6
