"""Tests for node- and reducer-failure injection in the simulator."""

from __future__ import annotations

import pytest

from repro.core.types import ExecutionMode
from repro.obs import JobObservability, validate_span_nesting
from repro.sim import (
    HadoopSimulator,
    NodeFailure,
    ReducerFailure,
    wordcount_profile,
)


@pytest.fixture(scope="module")
def sim():
    return HadoopSimulator()


class TestNodeFailure:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_job_completes_despite_failure(self, sim, mode):
        result = sim.run(
            wordcount_profile(4.0), 40, mode, failure=NodeFailure(2, 30.0)
        )
        assert not result.failed
        assert result.reexecuted_maps > 0
        # Every map task still produced output exactly once.
        assert len(result.map_finish_times) == wordcount_profile(4.0).num_maps

    def test_failure_costs_time(self, sim):
        clean = sim.run(wordcount_profile(4.0), 40, ExecutionMode.BARRIER)
        failed = sim.run(
            wordcount_profile(4.0), 40, ExecutionMode.BARRIER,
            failure=NodeFailure(2, 30.0),
        )
        assert failed.completion_time > clean.completion_time

    def test_later_failure_loses_more_completed_work(self, sim):
        early = sim.run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER,
            failure=NodeFailure(1, 10.0),
        )
        late = sim.run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER,
            failure=NodeFailure(1, 100.0),
        )
        assert late.reexecuted_maps >= early.reexecuted_maps

    def test_barrierless_still_wins_under_failure(self, sim):
        # The paper's §8 claim, quantified: barrier removal does not cost
        # fault tolerance — the improvement survives a node failure.
        failure = NodeFailure(3, 40.0)
        barrier = sim.run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER, failure=failure
        )
        barrierless = sim.run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIERLESS, failure=failure
        )
        assert barrierless.completion_time < barrier.completion_time

    def test_failure_after_map_stage_reexecutes_outputs(self, sim):
        # Map outputs live on local disks; losing a node after its maps
        # finished still forces re-execution (write-local design).
        clean = sim.run(wordcount_profile(2.0), 40, ExecutionMode.BARRIER)
        failure = NodeFailure(0, clean.stage_times.last_map_done + 1.0)
        result = sim.run(
            wordcount_profile(2.0), 40, ExecutionMode.BARRIER, failure=failure
        )
        assert result.reexecuted_maps > 0
        assert len(result.map_finish_times) == wordcount_profile(2.0).num_maps

    def test_invalid_node_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.run(
                wordcount_profile(2.0), 10, ExecutionMode.BARRIER,
                failure=NodeFailure(999, 10.0),
            )

    def test_deterministic(self, sim):
        kwargs = dict(failure=NodeFailure(2, 25.0))
        a = sim.run(wordcount_profile(4.0), 40, ExecutionMode.BARRIER, **kwargs)
        b = sim.run(wordcount_profile(4.0), 40, ExecutionMode.BARRIER, **kwargs)
        assert a.completion_time == b.completion_time
        assert a.reexecuted_maps == b.reexecuted_maps


class TestReducerFailure:
    """Reducer-side failure: re-fetch is symmetric, re-fold is not.

    Map outputs are retained, so a restarted reduce attempt re-fetches
    its partition identically in both modes (``refetched_mb``); but only
    the barrier-less attempt had already *folded* what it fetched, so
    only it re-does reduce work for a failure during the fetch phase
    (``refolded_records``) — the cost asymmetry behind the §8 claim.
    """

    def _mid_fetch_time(self, sim, mode, reducer_id):
        """A failure instant strictly inside the attempt's fetch phase."""
        clean = sim.run(wordcount_profile(4.0), 40, mode)
        trace = clean.reducers[reducer_id]
        return (trace.start + trace.shuffle_done) / 2.0

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_job_completes_despite_reducer_failure(self, sim, mode):
        at_time = self._mid_fetch_time(sim, mode, reducer_id=3)
        result = sim.run(
            wordcount_profile(4.0), 40, mode,
            reducer_failure=ReducerFailure(3, at_time),
        )
        assert not result.failed
        assert result.reducer_restarts == 1
        assert result.refetched_mb > 0
        assert len(result.aborted_reducers) == 1
        assert result.aborted_reducers[0].finish == at_time
        # No map re-executes: retained outputs serve the re-fetch.
        assert result.reexecuted_maps == 0

    def test_restart_costs_time(self, sim):
        # Kill the critical-path reducer deep in its reduce phase: the
        # restart re-fetches and re-reduces after the detection delay,
        # pushing job completion out.  (A mid-fetch restart can be free —
        # the fetch is arrival-bound, and the map outputs are retained —
        # and a non-critical restart hides in slower reducers' slack.)
        mode = ExecutionMode.BARRIER
        clean = sim.run(wordcount_profile(4.0), 40, mode)
        critical = max(clean.reducers, key=lambda t: t.finish)
        at_time = critical.sort_done + 0.9 * (
            critical.finish - critical.sort_done
        )
        failed = sim.run(
            wordcount_profile(4.0), 40, mode,
            reducer_failure=ReducerFailure(critical.reducer_id, at_time),
        )
        assert failed.reducer_restarts == 1
        assert failed.completion_time > clean.completion_time

    def test_refold_cost_is_mode_asymmetric(self, sim):
        # Same failure point in the fetch phase: the barrier attempt has
        # reduced nothing yet (re-fetch only), while the barrier-less
        # attempt re-folds everything it had already consumed.
        barrier = sim.run(
            wordcount_profile(4.0), 40, ExecutionMode.BARRIER,
            reducer_failure=ReducerFailure(
                3, self._mid_fetch_time(sim, ExecutionMode.BARRIER, 3)
            ),
        )
        barrierless = sim.run(
            wordcount_profile(4.0), 40, ExecutionMode.BARRIERLESS,
            reducer_failure=ReducerFailure(
                3, self._mid_fetch_time(sim, ExecutionMode.BARRIERLESS, 3)
            ),
        )
        assert barrier.refolded_records == 0
        assert barrierless.refolded_records > 0

    def test_barrier_failure_after_sort_refolds(self, sim):
        mode = ExecutionMode.BARRIER
        clean = sim.run(wordcount_profile(4.0), 40, mode)
        trace = clean.reducers[3]
        late = (trace.sort_done + trace.finish) / 2.0
        result = sim.run(
            wordcount_profile(4.0), 40, mode,
            reducer_failure=ReducerFailure(3, late),
        )
        assert result.reducer_restarts == 1
        assert result.refolded_records > 0

    def test_failure_outside_attempt_window_is_a_noop(self, sim):
        mode = ExecutionMode.BARRIER
        clean = sim.run(wordcount_profile(4.0), 40, mode)
        result = sim.run(
            wordcount_profile(4.0), 40, mode,
            reducer_failure=ReducerFailure(3, clean.completion_time + 100.0),
        )
        assert result.reducer_restarts == 0
        assert result.completion_time == clean.completion_time

    def test_invalid_reducer_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.run(
                wordcount_profile(2.0), 10, ExecutionMode.BARRIER,
                reducer_failure=ReducerFailure(999, 10.0),
            )

    def test_deterministic(self, sim):
        failure = ReducerFailure(
            2, self._mid_fetch_time(sim, ExecutionMode.BARRIERLESS, 2)
        )
        a = sim.run(
            wordcount_profile(4.0), 40, ExecutionMode.BARRIERLESS,
            reducer_failure=failure,
        )
        b = sim.run(
            wordcount_profile(4.0), 40, ExecutionMode.BARRIERLESS,
            reducer_failure=failure,
        )
        assert a.completion_time == b.completion_time
        assert a.refolded_records == b.refolded_records

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_restart_visible_in_observability(self, sim, mode):
        obs = JobObservability()
        at_time = self._mid_fetch_time(sim, mode, reducer_id=3)
        sim.run(
            wordcount_profile(4.0), 40, mode,
            reducer_failure=ReducerFailure(3, at_time), obs=obs,
        )
        counters = obs.counters
        assert counters.get("reduce.restarts") == 1
        assert counters.get("sim.reducer_restarts") == 1
        assert counters.get("sim.refetched_mb") > 0
        assert counters.get("task.retries") == 1
        assert counters.get("task.attempts") == (
            counters.get("map.tasks") + counters.get("reduce.tasks") + 1
        )
        crashed = [
            span for span in obs.tracer.spans(kind="attempt")
            if span.attrs.get("crashed")
        ]
        assert [span.name for span in crashed] == ["reduce-3/attempt-0"]
        assert validate_span_nesting(obs.tracer.spans()) == []
