"""Tests for node-failure injection in the simulator."""

from __future__ import annotations

import pytest

from repro.core.types import ExecutionMode
from repro.sim import HadoopSimulator, NodeFailure, wordcount_profile


@pytest.fixture(scope="module")
def sim():
    return HadoopSimulator()


class TestNodeFailure:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_job_completes_despite_failure(self, sim, mode):
        result = sim.run(
            wordcount_profile(4.0), 40, mode, failure=NodeFailure(2, 30.0)
        )
        assert not result.failed
        assert result.reexecuted_maps > 0
        # Every map task still produced output exactly once.
        assert len(result.map_finish_times) == wordcount_profile(4.0).num_maps

    def test_failure_costs_time(self, sim):
        clean = sim.run(wordcount_profile(4.0), 40, ExecutionMode.BARRIER)
        failed = sim.run(
            wordcount_profile(4.0), 40, ExecutionMode.BARRIER,
            failure=NodeFailure(2, 30.0),
        )
        assert failed.completion_time > clean.completion_time

    def test_later_failure_loses_more_completed_work(self, sim):
        early = sim.run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER,
            failure=NodeFailure(1, 10.0),
        )
        late = sim.run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER,
            failure=NodeFailure(1, 100.0),
        )
        assert late.reexecuted_maps >= early.reexecuted_maps

    def test_barrierless_still_wins_under_failure(self, sim):
        # The paper's §8 claim, quantified: barrier removal does not cost
        # fault tolerance — the improvement survives a node failure.
        failure = NodeFailure(3, 40.0)
        barrier = sim.run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER, failure=failure
        )
        barrierless = sim.run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIERLESS, failure=failure
        )
        assert barrierless.completion_time < barrier.completion_time

    def test_failure_after_map_stage_reexecutes_outputs(self, sim):
        # Map outputs live on local disks; losing a node after its maps
        # finished still forces re-execution (write-local design).
        clean = sim.run(wordcount_profile(2.0), 40, ExecutionMode.BARRIER)
        failure = NodeFailure(0, clean.stage_times.last_map_done + 1.0)
        result = sim.run(
            wordcount_profile(2.0), 40, ExecutionMode.BARRIER, failure=failure
        )
        assert result.reexecuted_maps > 0
        assert len(result.map_finish_times) == wordcount_profile(2.0).num_maps

    def test_invalid_node_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.run(
                wordcount_profile(2.0), 10, ExecutionMode.BARRIER,
                failure=NodeFailure(999, 10.0),
            )

    def test_deterministic(self, sim):
        kwargs = dict(failure=NodeFailure(2, 25.0))
        a = sim.run(wordcount_profile(4.0), 40, ExecutionMode.BARRIER, **kwargs)
        b = sim.run(wordcount_profile(4.0), 40, ExecutionMode.BARRIER, **kwargs)
        assert a.completion_time == b.completion_time
        assert a.reexecuted_maps == b.reexecuted_maps
