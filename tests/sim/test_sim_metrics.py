"""Simulator metrics/events export: schema presence and determinism."""

from __future__ import annotations

from repro.core.types import ExecutionMode
from repro.obs import JobObservability
from repro.sim import HadoopSimulator, paper_testbed, wordcount_profile

#: Every simulated run must export the same tracked series the live
#: engines record, plus the simulator-only utilization series.
REQUIRED_SERIES = (
    "shuffle.buffer.depth",
    "store.bytes",
    "shuffle.fetch.inflight",
    "reduce.records_per_s",
    "sim.network.mb_per_s",
    "sim.disk.spilled_mb",
)


def simulate(mode: ExecutionMode) -> JobObservability:
    obs = JobObservability()
    sim = HadoopSimulator(paper_testbed())
    sim.run(wordcount_profile(2.0), 10, mode, obs=obs)
    return obs


class TestExportedSeries:
    def test_both_modes_export_required_series(self):
        for mode in ExecutionMode:
            obs = simulate(mode)
            names = obs.metrics.names()
            for name in REQUIRED_SERIES:
                assert name in names, f"{mode.value}: missing {name}"
            assert "shuffle.buffer.hwm" in obs.metrics.maxima()

    def test_barrier_buffers_deeper_than_barrierless(self):
        # The paper's core claim, visible in the sampled series: the
        # barrier accumulates shuffle output before reducing while the
        # pipelined mode consumes as it arrives.
        barrier = simulate(ExecutionMode.BARRIER)
        barrierless = simulate(ExecutionMode.BARRIERLESS)
        barrier_hwm = barrier.metrics.maxima()["shuffle.buffer.hwm"]
        barrierless_hwm = barrierless.metrics.maxima()["shuffle.buffer.hwm"]
        assert barrier_hwm > barrierless_hwm

    def test_task_events_exported(self):
        obs = simulate(ExecutionMode.BARRIERLESS)
        counts = obs.events.counts()
        assert counts.get("task.start", 0) > 0
        assert counts.get("task.finish", 0) > 0
        # Virtual-time ties are common; (t, seq) must still totally order.
        events = obs.events.events()
        keys = [(event.t, event.seq) for event in events]
        assert keys == sorted(keys)


class TestDeterminism:
    def test_metrics_snapshot_is_bit_identical_across_runs(self):
        for mode in ExecutionMode:
            first = simulate(mode)
            second = simulate(mode)
            assert first.metrics.as_dict() == second.metrics.as_dict()

    def test_event_log_is_identical_across_runs(self):
        first = simulate(ExecutionMode.BARRIERLESS)
        second = simulate(ExecutionMode.BARRIERLESS)
        assert [event.to_json() for event in first.events.events()] == [
            event.to_json() for event in second.events.events()
        ]
