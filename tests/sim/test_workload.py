"""Tests for simulator job profiles and the memory growth model."""

from __future__ import annotations

import pytest

from repro.core.types import ReduceClass
from repro.sim.workload import (
    PROFILE_BUILDERS,
    JobProfile,
    MemoryProfile,
    blackscholes_profile,
    genetic_profile,
    knn_profile,
    lastfm_profile,
    sort_profile,
    wordcount_profile,
)


class TestMemoryProfile:
    def test_identity_is_zero(self):
        profile = MemoryProfile(ReduceClass.IDENTITY)
        assert profile.bytes_at(1e9) == 0.0

    def test_sorting_linear_in_records(self):
        profile = MemoryProfile(ReduceClass.SORTING, entry_bytes=10)
        assert profile.bytes_at(100) == pytest.approx(1000.0)
        assert profile.bytes_at(200) == pytest.approx(2000.0)

    def test_aggregation_sublinear_heaps_law(self):
        profile = MemoryProfile(
            ReduceClass.AGGREGATION, entry_bytes=1, key_cardinality=1e12,
            heaps_k=1.0, heaps_beta=0.5,
        )
        assert profile.bytes_at(100) == pytest.approx(10.0)
        # doubling records does NOT double distinct keys
        assert profile.bytes_at(400) == pytest.approx(20.0)

    def test_aggregation_caps_at_cardinality(self):
        profile = MemoryProfile(
            ReduceClass.AGGREGATION, entry_bytes=1, key_cardinality=50,
            heaps_k=10.0, heaps_beta=1.0,
        )
        assert profile.bytes_at(1e9) == pytest.approx(50.0)

    def test_selection_k_multiplier(self):
        base = MemoryProfile(
            ReduceClass.AGGREGATION, entry_bytes=1, key_cardinality=1e9,
            heaps_k=1.0, heaps_beta=1.0,
        )
        sel = MemoryProfile(
            ReduceClass.SELECTION, entry_bytes=1, key_cardinality=1e9,
            heaps_k=1.0, heaps_beta=1.0, selection_k=5,
        )
        assert sel.bytes_at(100) == pytest.approx(5 * base.bytes_at(100))

    def test_post_reduction_saturates(self):
        profile = MemoryProfile(
            ReduceClass.POST_REDUCTION, entry_bytes=1, saturation_records=1000
        )
        assert profile.bytes_at(500) == pytest.approx(500.0)
        assert profile.bytes_at(10_000) == pytest.approx(1000.0)

    def test_cross_key_constant_window(self):
        profile = MemoryProfile(ReduceClass.CROSS_KEY, entry_bytes=8, window_size=16)
        assert profile.bytes_at(10) == profile.bytes_at(1e9) == 128.0

    def test_single_reducer_constant(self):
        profile = MemoryProfile(ReduceClass.SINGLE_REDUCER, entry_bytes=64)
        assert profile.bytes_at(1e12) == 64.0

    def test_zero_records_zero_bytes(self):
        for cls in ReduceClass:
            assert MemoryProfile(cls).bytes_at(0) == 0.0


class TestJobProfile:
    def test_totals(self):
        profile = wordcount_profile(4.0)
        assert profile.num_maps == 64  # 4 GB / 64 MB
        assert profile.total_input_mb == pytest.approx(64 * 64.0)
        assert profile.total_map_output_mb > 0

    def test_records_per_reducer_uniform(self):
        profile = wordcount_profile(2.0)
        assert profile.records_per_reducer(10) == pytest.approx(
            profile.records_per_reducer(5) / 2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            JobProfile(
                "bad", ReduceClass.IDENTITY, 0, 1, 1, 1, 0, 0, 0, 0, 0
            )
        with pytest.raises(ValueError):
            JobProfile(
                "bad", ReduceClass.IDENTITY, 1, -1, 1, 1, 0, 0, 0, 0, 0
            )


class TestProfileBuilders:
    def test_all_six_present(self):
        assert set(PROFILE_BUILDERS) == {"sort", "wc", "knn", "pp", "ga", "bs"}

    @pytest.mark.parametrize(
        "builder,arg,expected_class",
        [
            (sort_profile, 2.0, ReduceClass.SORTING),
            (wordcount_profile, 2.0, ReduceClass.AGGREGATION),
            (knn_profile, 2.0, ReduceClass.SELECTION),
            (lastfm_profile, 2.0, ReduceClass.POST_REDUCTION),
            (genetic_profile, 50, ReduceClass.CROSS_KEY),
            (blackscholes_profile, 50, ReduceClass.SINGLE_REDUCER),
        ],
    )
    def test_classes_match_table_1(self, builder, arg, expected_class):
        assert builder(arg).reduce_class is expected_class

    def test_maps_scale_with_input(self):
        assert wordcount_profile(8.0).num_maps == 2 * wordcount_profile(4.0).num_maps

    def test_ga_bs_reject_zero_mappers(self):
        with pytest.raises(ValueError):
            genetic_profile(0)
        with pytest.raises(ValueError):
            blackscholes_profile(0)

    def test_lastfm_saturation_set(self):
        profile = lastfm_profile(4.0)
        assert profile.memory.saturation_records is not None


class TestPartitionSkew:
    def test_uniform_by_default(self):
        profile = wordcount_profile(2.0)
        assert profile.reducer_load_factors(10) == [1.0] * 10

    def test_factors_mean_one(self):
        import numpy as np

        profile = wordcount_profile(2.0)
        profile.partition_skew = 0.8
        factors = profile.reducer_load_factors(50, seed=3)
        assert np.mean(factors) == pytest.approx(1.0)
        assert max(factors) > 1.5  # genuinely skewed

    def test_deterministic_under_seed(self):
        profile = wordcount_profile(2.0)
        profile.partition_skew = 0.5
        assert profile.reducer_load_factors(20, seed=1) == (
            profile.reducer_load_factors(20, seed=1)
        )

    def test_rejects_negative_skew(self):
        profile = wordcount_profile(2.0)
        profile.partition_skew = -0.1
        with pytest.raises(ValueError):
            profile.__post_init__()

    def test_skewed_job_conserves_total_records(self):
        from repro.core.types import ExecutionMode
        from repro.sim.hadoop import HadoopSimulator

        profile = wordcount_profile(4.0)
        profile.partition_skew = 0.7
        result = HadoopSimulator().run(profile, 20, ExecutionMode.BARRIERLESS)
        total = sum(trace.records for trace in result.reducers)
        expected = profile.records_per_reducer(20) * 20
        assert total == pytest.approx(expected, rel=1e-6)
