"""Tests for checkpoint modelling in the simulator (repro.sim.hadoop).

The model under test is the checkpoint-frequency trade-off: snapshot
writes cost disk time on every clean run, but bound the refetch/refold
work a killed reducer must repeat.  Shrinking the interval must
monotonically raise clean-run cost (more writes) while shrinking the
replayed tail after a failure — and a checkpointed failure run must beat
the refold baseline end to end.
"""

from __future__ import annotations

import pytest

from repro.core.types import ExecutionMode
from repro.obs import JobObservability
from repro.sim import CheckpointPlan, HadoopSimulator, ReducerFailure, sort_profile

PROFILE = sort_profile(10.0)
REDUCERS = 16

#: Both intervals sit well inside the fold window (~40 s for this
#: profile); coarser plans would never snapshot before the sort ends.
COARSE = CheckpointPlan(interval_s=30.0)
FINE = CheckpointPlan(interval_s=8.0)


@pytest.fixture(scope="module")
def sim():
    return HadoopSimulator()


@pytest.fixture(scope="module")
def base(sim):
    return sim.run(PROFILE, REDUCERS, ExecutionMode.BARRIERLESS)


def _failure(base):
    return ReducerFailure(reducer_id=3, at_time=base.completion_time * 0.6)


class TestPlan:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            CheckpointPlan(interval_s=0.0)

    def test_barrier_mode_ignores_plan(self, sim):
        # Barrier reducers hold no partial store during the shuffle;
        # there is nothing to snapshot.
        result = sim.run(PROFILE, REDUCERS, ExecutionMode.BARRIER, checkpoint=FINE)
        assert result.checkpoint_writes == 0
        assert result.checkpoint_mb == 0.0


class TestCleanRunCost:
    def test_no_plan_writes_nothing(self, base):
        assert base.checkpoint_writes == 0
        assert base.checkpoint_schedule == []

    def test_plan_charges_snapshot_writes(self, sim, base):
        result = sim.run(PROFILE, REDUCERS, ExecutionMode.BARRIERLESS, checkpoint=FINE)
        assert result.checkpoint_writes > 0
        assert result.checkpoint_mb > 0.0
        assert result.completion_time >= base.completion_time
        # Schedule entries are (time, cumulative MB), time-ordered.
        times = [t for t, _mb in result.checkpoint_schedule]
        assert times == sorted(times)

    def test_finer_interval_costs_more(self, sim):
        coarse = sim.run(
            PROFILE, REDUCERS, ExecutionMode.BARRIERLESS, checkpoint=COARSE
        )
        fine = sim.run(PROFILE, REDUCERS, ExecutionMode.BARRIERLESS, checkpoint=FINE)
        assert fine.checkpoint_writes > coarse.checkpoint_writes
        assert fine.checkpoint_mb > coarse.checkpoint_mb
        assert fine.completion_time >= coarse.completion_time


class TestFailureRecovery:
    def test_resume_beats_refold(self, sim, base):
        refold = sim.run(
            PROFILE, REDUCERS, ExecutionMode.BARRIERLESS,
            reducer_failure=_failure(base),
        )
        resumed = sim.run(
            PROFILE, REDUCERS, ExecutionMode.BARRIERLESS,
            reducer_failure=_failure(base), checkpoint=FINE,
        )
        assert resumed.restored_records > 0
        # The snapshot bounds the refetched tail and the repeated fold.
        assert resumed.refetched_mb < refold.refetched_mb
        assert resumed.completion_time < refold.completion_time

    def test_tradeoff_is_monotone(self, sim, base):
        failure = _failure(base)
        coarse = sim.run(
            PROFILE, REDUCERS, ExecutionMode.BARRIERLESS,
            reducer_failure=failure, checkpoint=COARSE,
        )
        fine = sim.run(
            PROFILE, REDUCERS, ExecutionMode.BARRIERLESS,
            reducer_failure=failure, checkpoint=FINE,
        )
        # More frequent snapshots: shorter replayed tail, more restored.
        assert fine.replayed_records <= coarse.replayed_records
        assert fine.restored_records >= coarse.restored_records
        assert fine.completion_time <= coarse.completion_time

    def test_restored_plus_replayed_covers_partition(self, sim, base):
        # Accounting: everything the dead attempt had consumed is either
        # restored from the snapshot or replayed from map outputs.
        result = sim.run(
            PROFILE, REDUCERS, ExecutionMode.BARRIERLESS,
            reducer_failure=_failure(base), checkpoint=FINE,
        )
        assert result.restored_records > 0
        per_reducer = PROFILE.records_per_reducer(REDUCERS)
        assert (
            result.restored_records + result.replayed_records
            <= per_reducer * 1.01
        )


class TestObservabilityExport:
    def test_counters_and_metrics_exported(self, sim, base):
        obs = JobObservability()
        sim.run(
            PROFILE, REDUCERS, ExecutionMode.BARRIERLESS,
            reducer_failure=_failure(base), checkpoint=FINE, obs=obs,
        )
        assert obs.counters.get("sim.checkpoint_writes") > 0
        assert obs.counters.get("sim.disk.checkpoint_mb") > 0
        assert obs.counters.get("sim.restored_records") > 0
