"""Tests for the HDFS-like DFS model and locality scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import ExecutionMode
from repro.sim.cluster import ClusterSpec
from repro.sim.dfs import (
    DistributedFileSystem,
    LocalityStats,
    schedule_with_locality,
)
from repro.sim.hadoop import HadoopSimulator
from repro.sim.workload import wordcount_profile


class TestPlacement:
    def test_chunk_count(self):
        dfs = DistributedFileSystem(10, replication=3, seed=1)
        layout = dfs.write_file(640.0, chunk_mb=64.0)
        assert len(layout.chunks) == 10
        assert layout.total_mb == pytest.approx(640.0)

    def test_partial_last_chunk(self):
        dfs = DistributedFileSystem(5, replication=2, seed=1)
        layout = dfs.write_file(100.0, chunk_mb=64.0)
        assert [c.size_mb for c in layout.chunks] == [64.0, 36.0]

    def test_replicas_distinct_nodes(self):
        dfs = DistributedFileSystem(10, replication=3, seed=2)
        layout = dfs.write_file(64.0 * 50)
        for chunk in layout.chunks:
            assert len(chunk.replicas) == 3
            assert len(set(chunk.replicas)) == 3
            assert all(0 <= n < 10 for n in chunk.replicas)

    def test_replication_capped_by_cluster_size(self):
        dfs = DistributedFileSystem(2, replication=3, seed=1)
        layout = dfs.write_file(64.0)
        assert len(layout.chunks[0].replicas) == 2

    def test_deterministic_under_seed(self):
        a = DistributedFileSystem(8, 3, seed=7).write_file(640.0)
        b = DistributedFileSystem(8, 3, seed=7).write_file(640.0)
        assert [c.replicas for c in a.chunks] == [c.replicas for c in b.chunks]

    def test_placement_reasonably_balanced(self):
        dfs = DistributedFileSystem(15, replication=3, seed=3)
        layout = dfs.write_file(64.0 * 300)
        assert layout.replica_balance() < 1.5

    def test_empty_file(self):
        layout = DistributedFileSystem(4, 2).write_file(0.0)
        assert layout.chunks == []

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DistributedFileSystem(0)
        with pytest.raises(ValueError):
            DistributedFileSystem(4, replication=0)
        with pytest.raises(ValueError):
            DistributedFileSystem(4).write_file(-1.0)


class TestLocalityScheduling:
    def test_prefers_local_chunk(self):
        dfs = DistributedFileSystem(4, replication=1, seed=1)
        layout = dfs.write_file(64.0 * 4)
        node = layout.chunks[2].replicas[0]
        chunk_id, is_local = schedule_with_locality(
            layout, node, {2, 3}
        )
        assert is_local
        assert layout.chunks[chunk_id].is_local_to(node)

    def test_steals_remote_when_no_local_pending(self):
        dfs = DistributedFileSystem(4, replication=1, seed=1)
        layout = dfs.write_file(64.0 * 4)
        # Find a node holding none of the pending chunks.
        pending = {0}
        holder = layout.chunks[0].replicas[0]
        other = next(n for n in range(4) if n != holder)
        chunk_id, is_local = schedule_with_locality(layout, other, pending)
        assert chunk_id == 0
        assert not is_local

    def test_empty_pending(self):
        layout = DistributedFileSystem(4, 1).write_file(64.0)
        assert schedule_with_locality(layout, 0, set()) == (None, False)

    @given(st.integers(2, 12), st.integers(1, 30))
    def test_property_all_chunks_schedulable(self, nodes, chunks):
        dfs = DistributedFileSystem(nodes, replication=2, seed=0)
        layout = dfs.write_file(64.0 * chunks)
        pending = {c.chunk_id for c in layout.chunks}
        scheduled = []
        node = 0
        while pending:
            chunk_id, _local = schedule_with_locality(layout, node, pending)
            assert chunk_id is not None
            pending.discard(chunk_id)
            scheduled.append(chunk_id)
            node = (node + 1) % nodes
        assert sorted(scheduled) == list(range(chunks))


class TestLocalityStats:
    def test_fraction(self):
        stats = LocalityStats(local=9, remote=1)
        assert stats.locality_fraction == pytest.approx(0.9)
        assert LocalityStats().locality_fraction == 1.0


class TestSimulatorIntegration:
    def test_high_locality_with_replication_3(self):
        result = HadoopSimulator(ClusterSpec()).run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER
        )
        assert result.locality.total == wordcount_profile(8.0).num_maps
        assert result.locality.locality_fraction > 0.75

    def test_replication_1_lowers_locality(self):
        high = HadoopSimulator(ClusterSpec(replication=3)).run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER
        )
        low = HadoopSimulator(ClusterSpec(replication=1)).run(
            wordcount_profile(8.0), 40, ExecutionMode.BARRIER
        )
        assert low.locality.locality_fraction <= high.locality.locality_fraction
