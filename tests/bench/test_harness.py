"""Tests for the perf-regression bench harness (repro.bench)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    BenchConfig,
    TRACKED_SERIES,
    diff_snapshots,
    list_snapshots,
    load_snapshot,
    previous_snapshot,
    render_diff,
    run_bench,
    write_snapshot,
)
from repro.cli import main

QUICK = BenchConfig.quick(apps=("wc",), repeats=2, records=200)


@pytest.fixture(scope="module")
def snapshot():
    """One tiny real bench run shared by this module's tests."""
    return run_bench(QUICK)


class TestRunBench:
    def test_snapshot_shape(self, snapshot):
        assert snapshot["schema"] == 1
        assert set(snapshot["runs"]) == {"wc/barrier", "wc/barrierless"}
        for run in snapshot["runs"].values():
            assert run["median_s"] > 0
            assert run["p95_s"] >= run["median_s"]
            assert len(run["samples"]) == QUICK.repeats
            assert run["counters"]["map.tasks"] == QUICK.num_maps

    def test_all_tracked_series_recorded(self, snapshot):
        for run in snapshot["runs"].values():
            # Cluster-only series (worker.*, cluster.telemetry.*) are
            # tracked but legitimately absent on the in-process matrix —
            # skipped, never zero-filled; the core engine set must land.
            assert set(run["series"]) <= set(TRACKED_SERIES)
            assert {
                "shuffle.buffer.depth",
                "store.bytes",
                "shuffle.fetch.inflight",
                "reduce.records_per_s",
                "shuffle.compress.ratio",
            } <= set(run["series"])
            for entry in run["series"].values():
                assert entry["summary"]["n"] >= 1
                assert entry["points"]
        assert snapshot["runs"]["wc/barrierless"]["maxima"][
            "shuffle.buffer.hwm"
        ] > 0

    def test_counters_deterministic_across_runs(self, snapshot):
        again = run_bench(QUICK)
        for key, run in snapshot["runs"].items():
            assert again["runs"][key]["counters"] == run["counters"]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            BenchConfig(repeats=0)
        with pytest.raises(ValueError):
            BenchConfig(apps=("nosuchapp",))


class TestPersistence:
    def test_write_list_load_previous(self, snapshot, tmp_path):
        directory = str(tmp_path / "history")
        first = dict(snapshot, created="20260101-000000")
        second = dict(snapshot, created="20260102-000000")
        write_snapshot(directory, first)
        write_snapshot(directory, second)
        paths = list_snapshots(directory)
        assert [p.split("BENCH_")[-1] for p in paths] == [
            "20260101-000000.json", "20260102-000000.json",
        ]
        assert load_snapshot(paths[0])["created"] == "20260101-000000"
        assert previous_snapshot(directory)["created"] == "20260102-000000"

    def test_previous_of_empty_directory_is_none(self, tmp_path):
        assert previous_snapshot(str(tmp_path)) is None
        assert list_snapshots(str(tmp_path / "missing")) == []

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_snapshot(str(path))


def slowed(snapshot: dict, factor: float) -> dict:
    """A deep copy of ``snapshot`` with every median scaled by ``factor``."""
    other = copy.deepcopy(snapshot)
    for run in other["runs"].values():
        run["median_s"] *= factor
    return other


class TestDiff:
    def test_identical_snapshots_have_no_regressions(self, snapshot):
        assert diff_snapshots(snapshot, snapshot) == []

    def test_injected_slowdown_detected(self, snapshot):
        current = slowed(snapshot, 1.5)
        regressions = diff_snapshots(
            snapshot, current, threshold=0.10, min_seconds=0.0
        )
        assert {r.run for r in regressions} == set(snapshot["runs"])
        assert all(r.kind == "timing" for r in regressions)
        assert all(r.ratio == pytest.approx(1.5) for r in regressions)

    def test_below_threshold_slowdown_ignored(self, snapshot):
        current = slowed(snapshot, 1.05)
        assert diff_snapshots(
            snapshot, current, threshold=0.10, min_seconds=0.0
        ) == []

    def test_noise_floor_suppresses_small_absolute_deltas(self, snapshot):
        # 50% slower but far below min_seconds on a millisecond run: a
        # timing diff across machines must not flag micro-jitter.
        current = slowed(snapshot, 1.5)
        assert diff_snapshots(
            snapshot, current, threshold=0.10, min_seconds=60.0
        ) == []

    def test_counter_regression_detected(self, snapshot):
        current = copy.deepcopy(snapshot)
        run = current["runs"]["wc/barrierless"]
        run["counters"]["shuffle.records"] *= 2
        regressions = diff_snapshots(snapshot, current, scope="counters")
        assert len(regressions) == 1
        assert regressions[0].metric == "shuffle.records"
        assert regressions[0].kind == "counter"

    def test_counters_scope_ignores_timing(self, snapshot):
        current = slowed(snapshot, 10.0)
        assert diff_snapshots(snapshot, current, scope="counters") == []

    def test_missing_runs_are_not_regressions(self, snapshot):
        current = copy.deepcopy(snapshot)
        del current["runs"]["wc/barrier"]
        slow = slowed(snapshot, 2.0)
        del slow["runs"]["wc/barrierless"]
        # Removed from current: skipped.  Disjoint run sets: skipped —
        # a changed bench matrix is not a regression.
        assert diff_snapshots(snapshot, current, min_seconds=0.0) == []
        assert diff_snapshots(current, slow, min_seconds=0.0) == []

    def test_rejects_unknown_scope(self, snapshot):
        with pytest.raises(ValueError):
            diff_snapshots(snapshot, snapshot, scope="vibes")

    def test_render_diff_mentions_regressions(self, snapshot):
        current = slowed(snapshot, 1.5)
        regressions = diff_snapshots(
            snapshot, current, min_seconds=0.0
        )
        text = render_diff(snapshot, current, regressions)
        assert "REGRESSIONS" in text
        assert "wc/barrier" in text
        clean = render_diff(snapshot, snapshot, [])
        assert "no regressions" in clean


class TestCli:
    def test_bench_writes_snapshot_and_diffs_clean(self, tmp_path, capsys):
        out = str(tmp_path / "history")
        argv = ["bench", "--quick", "--apps", "wc", "--repeats", "2",
                "--records", "200", "--out", out]
        assert main(argv) == 0
        assert "no baseline snapshot" in capsys.readouterr().out
        assert len(list_snapshots(out)) == 1
        # Second run diffs against the first; tiny runs sit under the
        # noise floor, so the exit stays clean.
        assert main(argv) == 0
        assert "no regressions" in capsys.readouterr().out
        assert len(list_snapshots(out)) == 2

    def test_bench_diff_exits_nonzero_on_slowdown(
        self, snapshot, tmp_path, capsys
    ):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(snapshot))
        new.write_text(json.dumps(slowed(snapshot, 1.5)))
        assert main(["bench", "--diff", str(old), str(new),
                     "--min-seconds", "0"]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out
        assert main(["bench", "--diff", str(old), str(old)]) == 0

    def test_bench_explicit_baseline_counters_scope(
        self, snapshot, tmp_path, capsys
    ):
        baseline = tmp_path / "BENCH_baseline.json"
        baseline.write_text(json.dumps(snapshot))
        assert main(["bench", "--quick", "--apps", "wc", "--repeats", "1",
                     "--records", "200", "--no-write",
                     "--out", str(tmp_path / "none"),
                     "--baseline", str(baseline),
                     "--scope", "counters"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_metrics_command_prints_sparklines(self, capsys):
        assert main(["metrics", "wc", "--records", "300", "--events"]) == 0
        out = capsys.readouterr().out
        assert "shuffle.buffer.depth" in out
        assert "high-water marks" in out
        assert "task.start" in out

    def test_metrics_file_rendering(self, tmp_path, capsys):
        path = str(tmp_path / "m.json")
        assert main(["metrics", "wc", "--records", "300", "-o", path]) == 0
        capsys.readouterr()
        assert main(["metrics", "--file", path]) == 0
        assert "reduce.records_per_s" in capsys.readouterr().out

    def test_metrics_requires_app_or_file(self, capsys):
        assert main(["metrics"]) == 2
