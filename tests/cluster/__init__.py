"""Tests for the networked multi-process cluster runtime."""
