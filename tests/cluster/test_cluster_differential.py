"""Differential matrix: the TCP cluster must match the threaded engine.

Every bundled application runs on real forked worker processes — map
outputs shuffled over sockets as wire frames, coordination over the
framed RPC protocol — and the canonicalized output must be byte-
identical to the in-process threaded engine on the same input, for
worker counts 1, 2 and 4 (single-worker loopback, the minimal
distribution, and more workers than reducers).  Runtimes are shared
per worker count so the matrix pays the fork cost once, and the
barrier mode rides the same data plane on a subset.
"""

from __future__ import annotations

import pytest

from repro.apps.demo import APP_CHOICES, demo_job_and_input, normalized_output
from repro.cluster import ClusterRuntime
from repro.core.types import ExecutionMode
from repro.dfs.wire import WireConfig
from repro.engine.threaded import ThreadedEngine

RECORDS = 200
NUM_MAPS = 3
NUM_REDUCERS = 2
WORKER_COUNTS = (1, 2, 4)

#: Small batches so multi-batch streams (and their sequencing) are
#: actually exercised at this input size.
WIRE = WireConfig(max_batch_records=32)

_baselines: dict = {}
_runtimes: dict = {}


def _demo(app: str, mode: ExecutionMode):
    return demo_job_and_input(
        app, mode, records=RECORDS,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS,
    )


def _baseline(app: str, mode: ExecutionMode):
    """Canonicalized threaded-engine output, computed once per cell."""
    key = (app, mode)
    if key not in _baselines:
        job, pairs = _demo(app, mode)
        result = ThreadedEngine(map_slots=2, wire=WIRE).run(
            job, pairs, num_maps=NUM_MAPS
        )
        _baselines[key] = normalized_output(app, result)
    return _baselines[key]


@pytest.fixture(scope="module")
def runtime_for():
    """Lazily started, module-shared runtime per worker count."""

    def get(workers: int) -> ClusterRuntime:
        if workers not in _runtimes:
            _runtimes[workers] = ClusterRuntime(workers, wire=WIRE)
        return _runtimes[workers]

    yield get
    while _runtimes:
        _runtimes.popitem()[1].shutdown()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("app", APP_CHOICES)
def test_barrierless_output_matches_threaded(runtime_for, app, workers):
    job, pairs = _demo(app, ExecutionMode.BARRIERLESS)
    result = runtime_for(workers).run_job(job, pairs, num_maps=NUM_MAPS)
    assert normalized_output(app, result) == _baseline(
        app, ExecutionMode.BARRIERLESS
    )


@pytest.mark.parametrize("app", ("wc", "grep", "sort"))
def test_barrier_output_matches_threaded(runtime_for, app):
    job, pairs = _demo(app, ExecutionMode.BARRIER)
    result = runtime_for(2).run_job(job, pairs, num_maps=NUM_MAPS)
    assert normalized_output(app, result) == _baseline(
        app, ExecutionMode.BARRIER
    )


def test_cluster_counters_account_for_work(runtime_for):
    """The coordinator merges task counters into a coherent job view."""
    job, pairs = _demo("wc", ExecutionMode.BARRIERLESS)
    result = runtime_for(2).run_job(job, pairs, num_maps=NUM_MAPS)
    counters = result.counters
    assert counters.get("map.tasks") == NUM_MAPS
    assert counters.get("reduce.tasks") == NUM_REDUCERS
    assert counters.get("map.output_records") == RECORDS
    assert counters.get("shuffle.records.consumed") == RECORDS
    # The data plane really ran through the wire codec.
    assert counters.get("shuffle.bytes.wire") > 0
