"""Resource-hygiene soak: many jobs through one cluster, no FD creep.

Every job opens real sockets (fetch connections, server-side accepted
links) and, with checkpointing, real files.  Fifty jobs through a
single runtime must leave the descriptor count flat — in the
coordinator process *and* in every worker — or the runtime would
exhaust its FD table in long-lived use.  Descriptor counts come from
:func:`tests.fdutil.open_fd_count`, which skips cleanly on platforms
where they cannot be measured.
"""

from __future__ import annotations

import time

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.cluster import ClusterRuntime
from repro.core.types import ExecutionMode
from repro.dfs.wire import WireConfig
from tests.fdutil import open_fd_count

JOBS = 50
WARMUP = 3

#: Tiny jobs: the soak measures hygiene, not throughput.
RECORDS = 60
NUM_MAPS = 2
NUM_REDUCERS = 2


def _demo():
    return demo_job_and_input(
        "wc", ExecutionMode.BARRIERLESS, records=RECORDS,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS,
    )


def _settled_counts(pids: list[int | None], limits: dict, deadline_s: float):
    """Poll until every process's FD count is back under its limit.

    Server-side connection teardown trails the client close by a
    scheduler beat; polling separates that transient from a real leak.
    """
    deadline = time.monotonic() + deadline_s
    while True:
        counts = {pid: open_fd_count(pid) for pid in pids}
        if all(counts[pid] <= limits[pid] for pid in pids):
            return counts
        if time.monotonic() >= deadline:
            return counts
        time.sleep(0.05)


def test_fifty_jobs_leave_descriptor_counts_flat():
    wire = WireConfig(max_batch_records=32)
    with ClusterRuntime(2, wire=wire) as runtime:
        job, pairs = _demo()
        expected = None
        for _ in range(WARMUP):
            job, pairs = _demo()
            result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
            expected = normalized_output("wc", result)
        pids: list[int | None] = [None, *runtime.worker_pids]
        baseline = {pid: open_fd_count(pid) for pid in pids}
        # A couple of descriptors of slack per process: an accepted
        # shuffle connection observed mid-teardown is not a leak — only
        # monotonic growth across 47 jobs is.
        limits = {pid: count + 3 for pid, count in baseline.items()}

        for _ in range(JOBS - WARMUP):
            job, pairs = _demo()
            result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
            assert normalized_output("wc", result) == expected

        counts = _settled_counts(pids, limits, deadline_s=5.0)
        for pid in pids:
            who = "coordinator" if pid is None else f"worker pid {pid}"
            assert counts[pid] <= limits[pid], (
                f"{who} climbed from {baseline[pid]} to {counts[pid]} "
                f"descriptors over {JOBS - WARMUP} jobs"
            )
