"""Cluster telemetry plane: propagation, shipping, merging, status.

The telemetry path is deliberately *presentation-only* — completion
messages remain the single authoritative counter source — so the first
thing these tests pin down is that the coordinator-merged counters of a
cluster run still match the threaded engine exactly, for every bundled
app, with telemetry enabled.  The rest covers the plane itself: the
frame codec round-trips and rejects corruption, the merged Chrome trace
is structurally valid (every process present, spans nested, timestamps
monotone per lane, propagated context on every task span), a SIGKILLed
worker's telemetry is truncated-but-valid rather than fabricated, and
the ``status`` RPC verb serves the same snapshot remotely that the
runtime reports locally.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.apps.demo import APP_CHOICES, demo_job_and_input, normalized_output
from repro.cluster import (
    ClusterRuntime,
    TraceContext,
    cluster_recovery,
    decode_telemetry,
    request_status,
)
from repro.cluster.telemetry import TELEMETRY_SCHEMA_VERSION, TelemetryBuffer
from repro.core.types import ExecutionMode
from repro.dfs.serialization import SerializationError
from repro.dfs.wire import WireConfig
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability, validate_span_nesting
from repro.obs.export import spans_from_chrome_trace

RECORDS = 200
NUM_MAPS = 3
NUM_REDUCERS = 2
WIRE = WireConfig(max_batch_records=32)

#: Counters that must be byte-identical between engines on a clean run.
#: (Retry/backoff/timing counters are legitimately nondeterministic.)
DETERMINISTIC_COUNTERS = (
    "map.tasks",
    "map.input_records",
    "map.output_records",
    "reduce.tasks",
    "reduce.output_records",
)

_runtimes: dict = {}


def _demo(app: str, mode: ExecutionMode = ExecutionMode.BARRIERLESS):
    return demo_job_and_input(
        app, mode, records=RECORDS,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS,
    )


@pytest.fixture(scope="module")
def runtime():
    """Lazily started, module-shared 2-worker runtime (telemetry on)."""
    if "shared" not in _runtimes:
        _runtimes["shared"] = ClusterRuntime(2, wire=WIRE)
    yield _runtimes["shared"]
    while _runtimes:
        _runtimes.popitem()[1].shutdown()


def _wait_for(predicate, timeout_s: float = 5.0) -> bool:
    """Poll for an async condition (job-done frames land post-return)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


def _loaded_obs() -> JobObservability:
    obs = JobObservability()
    span = obs.tracer.open("map-0", "task", worker="w0")
    obs.events.emit("task.start", task="map-0")
    obs.counters.increment("map.output_records", 7)
    obs.metrics.sample("store.bytes", 123.0, unit="bytes")
    obs.metrics.sample("store.bytes", 456.0, unit="bytes")
    obs.tracer.close(span)
    return obs


def test_trace_context_round_trips_over_rpc_fields():
    ctx = TraceContext(job_id="job-1", task_id="reduce-1", attempt=2, epoch=0)
    assert TraceContext.from_fields(ctx.as_fields()) == ctx
    assert TraceContext.from_fields(None) is None
    assert TraceContext.from_fields({}) is None


def test_telemetry_frame_round_trips():
    obs = _loaded_obs()
    buffer = TelemetryBuffer(obs, job_id="job-1", worker="w0", pid=4242)
    payload = decode_telemetry(buffer.collect())
    assert payload["v"] == TELEMETRY_SCHEMA_VERSION
    assert payload["worker"] == "w0"
    assert payload["pid"] == 4242
    assert payload["counters"]["map.output_records"] == 7
    assert [s["name"] for s in payload["spans"]] == ["map-0"]
    assert [e["kind"] for e in payload["events"]] == ["task.start"]
    series = payload["series"]["store.bytes"]
    assert series["unit"] == "bytes"
    assert [v for _t, v in series["points"]] == [123.0, 456.0]
    # A second collect with nothing new ships an empty delta.
    empty = decode_telemetry(buffer.collect())
    assert not empty["spans"] and not empty["events"]
    assert not empty["counters"] and not empty["series"]


def test_corrupt_telemetry_frame_raises():
    frame = TelemetryBuffer(
        _loaded_obs(), job_id="job-1", worker="w0", pid=1
    ).collect()
    flipped = bytearray(frame)
    flipped[len(flipped) // 2] ^= 0xFF
    with pytest.raises(SerializationError):
        decode_telemetry(bytes(flipped))
    with pytest.raises(SerializationError):
        decode_telemetry(frame + b"\x00")
    with pytest.raises(SerializationError):
        decode_telemetry(frame[: len(frame) - 3])


def test_rollback_reships_an_unsent_delta():
    obs = _loaded_obs()
    buffer = TelemetryBuffer(obs, job_id="job-1", worker="w0", pid=1)
    first = decode_telemetry(buffer.collect())
    assert first["counters"]
    buffer.rollback()  # the frame "never made it onto the wire"
    again = decode_telemetry(buffer.collect())
    assert again["counters"] == first["counters"]
    assert [s["id"] for s in again["spans"]] == [
        s["id"] for s in first["spans"]
    ]
    # Rollback only undoes the most recent collect; the second call is
    # a no-op rather than unwinding further.
    buffer.rollback()
    buffer.rollback()
    reshipped = decode_telemetry(buffer.collect())
    assert reshipped["counters"] == first["counters"]
    assert not decode_telemetry(buffer.collect())["counters"]


# ---------------------------------------------------------------------------
# Differential: telemetry must not perturb the authoritative counters
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app", APP_CHOICES)
def test_merged_counters_match_threaded_engine(runtime, app):
    job, pairs = _demo(app)
    cluster_result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
    job, pairs = _demo(app)
    threaded_result = ThreadedEngine(map_slots=2, wire=WIRE).run(
        job, pairs, num_maps=NUM_MAPS
    )
    assert normalized_output(app, cluster_result) == normalized_output(
        app, threaded_result
    )
    for name in DETERMINISTIC_COUNTERS:
        assert cluster_result.counters.get(name) == threaded_result.counters.get(
            name
        ), name
    # The engines name the consumption counter differently (the cluster
    # path counts at the fetch-stream consumer), but the totals agree.
    assert cluster_result.counters.get(
        "shuffle.records.consumed"
    ) == threaded_result.counters.get("shuffle.records")


# ---------------------------------------------------------------------------
# Merged trace schema
# ---------------------------------------------------------------------------


def test_merged_trace_schema(runtime):
    job, pairs = _demo("wc")
    runtime.run_job(job, pairs, num_maps=NUM_MAPS)
    trace = json.loads(json.dumps(runtime.telemetry.chrome_trace()))
    events = trace["traceEvents"]

    # Every process is present: coordinator pid 0 plus each worker's
    # OS pid, named by the "M" metadata events.
    names = {
        event["pid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    assert 0 in names and "coordinator" in names[0]
    for pid in runtime.worker_pids:
        assert pid in names, f"worker pid {pid} missing from trace"

    # The round-tripped span set is structurally valid as one whole.
    spans = spans_from_chrome_trace(trace)
    assert spans
    assert validate_span_nesting(spans) == []

    # File order is timestamp order within each (pid, tid) lane.
    last_ts: dict = {}
    for event in events:
        if event["ph"] != "X":
            continue
        lane = (event["pid"], event["tid"])
        assert event["ts"] >= last_ts.get(lane, float("-inf")), lane
        last_ts[lane] = event["ts"]

    # Worker task spans carry the propagated grant context.
    worker_tasks = [
        event for event in events
        if event["ph"] == "X" and event["pid"] != 0
        and event["args"]["kind"] == "task"
    ]
    assert worker_tasks
    for event in worker_tasks:
        args = event["args"]
        for field in ("job_id", "task_id", "attempt", "epoch",
                      "worker", "pid"):
            assert field in args, (event["name"], field)
        assert args["pid"] == event["pid"]


def test_merged_events_are_totally_ordered(runtime):
    job, pairs = _demo("wc")
    runtime.run_job(job, pairs, num_maps=NUM_MAPS)
    merged = runtime.telemetry.merged_events()
    assert merged
    keys = [
        (event.t, event.attrs["worker"], event.seq) for event in merged
    ]
    assert keys == sorted(keys)
    workers = {event.attrs["worker"] for event in merged}
    assert "" in workers  # the coordinator's own events
    assert any(worker for worker in workers)  # and shipped worker events


# ---------------------------------------------------------------------------
# Status plane
# ---------------------------------------------------------------------------


def test_status_verb_matches_local_snapshot(runtime):
    job, pairs = _demo("wc")
    runtime.run_job(job, pairs, num_maps=NUM_MAPS)
    assert _wait_for(  # job-done flush frames land asynchronously
        lambda: all(
            entry.get("series")
            for entry in runtime.status()["workers"].values()
        )
    )
    local = runtime.status()
    remote = request_status(*runtime.coordinator_address)
    assert remote["coordinator"]["pid"] == local["coordinator"]["pid"]
    assert set(remote["workers"]) == set(local["workers"])
    assert set(remote["jobs"]) == set(local["jobs"])
    for name, entry in remote["workers"].items():
        assert entry["pid"] == local["workers"][name]["pid"]
        assert entry["alive"] is True
        assert entry["frames"] > 0
        assert entry["series"], name
        assert entry["gauges"], name
    assert all(job["done"] for job in remote["jobs"].values())


def test_status_renders_as_dashboard(runtime):
    from repro.cli import _render_cluster_status

    job, pairs = _demo("wc")
    runtime.run_job(job, pairs, num_maps=NUM_MAPS)
    text = _render_cluster_status(runtime.status())
    assert "coordinator" in text
    assert "jobs (" in text and "workers (" in text
    for name in runtime.status()["workers"]:
        assert name in text


# ---------------------------------------------------------------------------
# SIGKILL: truncated-but-valid
# ---------------------------------------------------------------------------


def test_sigkill_leaves_truncated_but_valid_telemetry():
    """A SIGKILLed worker's telemetry stops cleanly at its last frame.

    Same chaos shape as the checkpoint-resume kill test (maps-first so
    the victim only holds a reduce); with telemetry shipping enabled the
    job must still produce baseline output, the victim must be flagged
    truncated (never fabricated-to-completion), the merged trace must
    still validate, and the authoritative counters must still reconcile
    every partition record exactly once.

    A clean job runs first on the same runtime: its completion flushes
    guarantee the victim has shipped frames before it dies, so "partial
    telemetry retained" is testable without racing the heartbeat timer.
    """
    from repro.memory.checkpoint import CheckpointPolicy

    recovery = cluster_recovery(
        checkpoint=CheckpointPolicy(every_records=20)
    )
    job, pairs = _demo("wc")
    baseline = normalized_output(
        "wc",
        ThreadedEngine(map_slots=2, wire=WIRE).run(
            job, pairs, num_maps=NUM_MAPS
        ),
    )
    with ClusterRuntime(
        2, wire=WIRE, recovery=recovery, placement="maps-first"
    ) as chaos_runtime:
        obs = chaos_runtime.obs
        job, pairs = _demo("wc")
        clean = chaos_runtime.run_job(job, pairs, num_maps=NUM_MAPS)
        assert normalized_output("wc", clean) == baseline
        before = obs.counters.as_dict()
        job, pairs = _demo("wc")
        result = chaos_runtime.run_job(
            job, pairs, num_maps=NUM_MAPS,
            kill={"worker": "w1", "trigger": "reduce-records", "count": 60},
        )
        assert normalized_output("wc", result) == baseline
        assert obs.counters.get("cluster.workers.lost") == 1
        assert chaos_runtime.telemetry.truncated_workers() == ["w1"]
        assert obs.counters.get("cluster.telemetry.truncated") == 1

        status = chaos_runtime.status()
        assert status["workers"]["w1"]["truncated"] is True
        assert status["workers"]["w1"]["alive"] is False
        assert status["workers"]["w0"]["truncated"] is False

        # The victim's partial telemetry is retained, not discarded …
        assert status["workers"]["w1"]["frames"] > 0
        # … and the merged trace (with the truncated process labelled)
        # still round-trips and validates as a whole.
        trace = json.loads(
            json.dumps(chaos_runtime.telemetry.chrome_trace())
        )
        labels = [
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        ]
        assert any("(truncated)" in label for label in labels)
        assert validate_span_nesting(spans_from_chrome_trace(trace)) == []

        # Authoritative accounting is untouched by the telemetry path:
        # within the chaos job (delta over the clean warm-up job), the
        # four-way classification covers every partition record once.
        buckets = {
            name: obs.counters.get(f"reduce.{name}_records")
            - before.get(f"reduce.{name}_records", 0)
            for name in ("restored", "replayed", "refolded", "live")
        }
        assert buckets["restored"] > 0
        assert sum(buckets.values()) == obs.counters.get(
            "map.output_records"
        ) - before.get("map.output_records", 0)
