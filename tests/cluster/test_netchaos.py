"""Network-chaos proxy: unit policies + differential runs under chaos.

The unit half drives :class:`~repro.cluster.netchaos.NetChaosProxy`
against a real :class:`~repro.cluster.shuffle.ShuffleServer` and
asserts each policy produces its intended failure *as seen by the
client protocol*: corruption surfaces as CRC/codec errors (the
retryable fetch faults — never silently different bytes), resets
surface as connection errors and evict the poisoned cached socket,
partitions stall and then heal.

The differential half runs demo apps through a cluster whose links all
cross the proxy, requiring byte-identical output to the threaded
engine under latency+throttle, a black-hole partition, and per-chunk
bit corruption — plus an FD soak under the reset policy, since every
reset must evict (and close) a cached per-peer socket rather than leak
it.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.apps.demo import APP_CHOICES, demo_job_and_input, normalized_output
from repro.cluster import (
    ChaosPolicy,
    ClusterRuntime,
    NetChaosConfig,
    NetChaosProxy,
)
from repro.cluster.shuffle import (
    LocationTable,
    RemoteMapOutputSource,
    ShuffleServer,
    ShuffleStore,
)
from repro.core.types import ExecutionMode, Record
from repro.dfs.wire import WireConfig, encode_record_batches
from repro.engine.recovery import FetchAttemptError, FetchTimeoutError
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability
from tests.fdutil import open_fd_count

RECORDS = 300
NUM_MAPS = 3
NUM_REDUCERS = 2
WIRE = WireConfig(max_batch_records=16)

_baselines: dict = {}


def _demo(app: str):
    return demo_job_and_input(
        app, ExecutionMode.BARRIERLESS, records=RECORDS,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS,
    )


def _baseline(app: str):
    if app not in _baselines:
        job, pairs = _demo(app)
        result = ThreadedEngine(map_slots=2, wire=WIRE).run(
            job, pairs, num_maps=NUM_MAPS
        )
        _baselines[app] = normalized_output(app, result)
    return _baselines[app]


# -- unit: one proxied shuffle link ---------------------------------------


@pytest.fixture()
def shuffle_stack():
    """A shuffle server holding one map output, plus client plumbing."""
    store = ShuffleStore()
    records = [Record(f"k{i}", i) for i in range(64)]
    batches = encode_record_batches(records, WIRE)
    store.publish("job-1", 0, 0, {0: batches})
    server = ShuffleServer(store)
    built = []

    def client_through(proxy: NetChaosProxy, timeout: float = 2.0):
        locations = LocationTable()
        locations.update(0, proxy.host, proxy.port, 0)
        source = RemoteMapOutputSource("job-1", locations, timeout)
        built.append(source)
        return source

    try:
        yield server, client_through
    finally:
        for source in built:
            source.close()
        server.close()


def _drain(source: RemoteMapOutputSource) -> list:
    """Fetch the whole mapper-0/reducer-0 stream through the source."""
    out = []
    seq = 0
    while True:
        _epoch, batch = source.read(0, 0, seq)
        if batch is None:
            return out
        out.append(batch.frame)
        seq += 1


def test_clean_policy_forwards_byte_identical(shuffle_stack):
    server, client_through = shuffle_stack
    obs = JobObservability()
    proxy = NetChaosProxy((server.host, server.port), ChaosPolicy(), obs=obs)
    try:
        direct = RemoteMapOutputSource("job-1", LocationTable(), 2.0)
        direct._locations.update(0, server.host, server.port, 0)
        try:
            expected = _drain(direct)
        finally:
            direct.close()
        assert _drain(client_through(proxy)) == expected
        assert obs.counters.get("netchaos.bytes") > 0
        assert obs.counters.get("netchaos.corrupted_bytes") == 0
    finally:
        proxy.close()


def test_latency_policy_delays_the_exchange(shuffle_stack):
    server, client_through = shuffle_stack
    proxy = NetChaosProxy(
        (server.host, server.port), ChaosPolicy(latency_s=0.05)
    )
    try:
        source = client_through(proxy)
        started = time.monotonic()
        source.read(0, 0, 0)
        # Request and reply each cross the proxy once: >= 2 * latency.
        assert time.monotonic() - started >= 0.1
    finally:
        proxy.close()


def test_corruption_surfaces_as_crc_errors_never_silent(shuffle_stack):
    """Every corrupted chunk must fail loudly through the CRC layer."""
    server, client_through = shuffle_stack
    obs = JobObservability()
    proxy = NetChaosProxy(
        (server.host, server.port),
        ChaosPolicy(corrupt_every_bytes=1, seed=3),  # corrupt every chunk
        obs=obs,
    )
    try:
        source = client_through(proxy)
        with pytest.raises((FetchAttemptError, FetchTimeoutError)):
            source.read(0, 0, 0)
        assert obs.counters.get("netchaos.corrupted_bytes") > 0
    finally:
        proxy.close()


def test_reset_policy_evicts_cached_socket_and_redials(shuffle_stack):
    server, client_through = shuffle_stack
    obs = JobObservability()
    proxy = NetChaosProxy(
        (server.host, server.port),
        ChaosPolicy(reset_after_bytes=1),
        obs=obs,
    )
    try:
        source = client_through(proxy)
        with pytest.raises(FetchAttemptError):
            source.read(0, 0, 0)
        links_after_first = obs.counters.get("netchaos.links")
        assert links_after_first == 1
        # The poisoned socket was evicted: the next attempt dials a
        # fresh connection (observable as a new proxied link) instead of
        # failing forever on the dead cached one.
        with pytest.raises(FetchAttemptError):
            source.read(0, 0, 0)
        assert obs.counters.get("netchaos.links") == links_after_first + 1
        assert obs.counters.get("netchaos.resets") >= 1
    finally:
        proxy.close()


def test_partition_blackholes_then_heals(shuffle_stack):
    server, client_through = shuffle_stack
    proxy = NetChaosProxy(
        (server.host, server.port), ChaosPolicy(partition_s=0.3)
    )
    try:
        source = client_through(proxy, timeout=5.0)
        started = time.monotonic()
        _epoch, batch = source.read(0, 0, 0)
        elapsed = time.monotonic() - started
        assert batch is not None  # healed: bytes flow after the window
        assert elapsed >= 0.2  # ...but only after riding out the hole
    finally:
        proxy.close()


def test_determinism_same_seed_same_corruption_counts():
    """One seed, one traffic shape → one corruption schedule."""
    counts = []
    for _run in range(2):
        obs = JobObservability()
        upstream = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        upstream.bind(("127.0.0.1", 0))
        upstream.listen(4)

        def echo_once(listener=upstream):
            conn, _ = listener.accept()
            with conn:
                data = conn.recv(1 << 16)
                conn.sendall(data)

        thread = threading.Thread(target=echo_once, daemon=True)
        thread.start()
        proxy = NetChaosProxy(
            upstream.getsockname(),
            ChaosPolicy(corrupt_every_bytes=64, seed=42),
            obs=obs,
        )
        try:
            client = socket.create_connection(proxy.address, timeout=5.0)
            client.sendall(b"x" * 4096)
            received = bytearray()
            client.settimeout(2.0)
            try:
                while len(received) < 4096:
                    chunk = client.recv(1 << 16)
                    if not chunk:
                        break
                    received += chunk
            except socket.timeout:
                pass
            client.close()
            thread.join(timeout=5.0)
            counts.append(obs.counters.get("netchaos.corrupted_bytes"))
        finally:
            proxy.close()
            upstream.close()
    assert counts[0] == counts[1]
    assert counts[0] > 0


# -- differential: demo apps through a degraded cluster -------------------


@pytest.mark.parametrize("app", APP_CHOICES)
def test_all_apps_survive_corruption_with_identical_output(app):
    """The acceptance oracle: corrupted links, byte-identical output."""
    netchaos = NetChaosConfig(
        shuffle=ChaosPolicy(corrupt_every_bytes=2048, seed=11),
    )
    job, pairs = _demo(app)
    with ClusterRuntime(2, wire=WIRE, netchaos=netchaos) as runtime:
        result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
        assert normalized_output(app, result) == _baseline(app)
        counters = runtime.obs.counters
        if counters.get("netchaos.corrupted_bytes") > 0:
            # Corruption that happened must have been *caught*: each bad
            # frame fails its CRC and is retried, never folded.
            assert counters.get("shuffle.fetch.retries") > 0


def test_latency_and_throttle_on_all_links():
    netchaos = NetChaosConfig(
        shuffle=ChaosPolicy(latency_s=0.002, bandwidth_bytes_per_s=2_000_000),
        rpc=ChaosPolicy(latency_s=0.001),
    )
    for app in ("wc", "sort", "grep"):
        job, pairs = _demo(app)
        with ClusterRuntime(2, wire=WIRE, netchaos=netchaos) as runtime:
            result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
            assert normalized_output(app, result) == _baseline(app)
            assert runtime.obs.counters.get("netchaos.links") > 0


def test_partition_window_rides_the_fetch_budget():
    """A 0.4s black hole on shuffle links stalls fetches, then heals."""
    netchaos = NetChaosConfig(shuffle=ChaosPolicy(partition_s=0.4))
    job, pairs = _demo("wc")
    with ClusterRuntime(2, wire=WIRE, netchaos=netchaos) as runtime:
        result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
        assert normalized_output("wc", result) == _baseline("wc")


def test_reset_soak_keeps_descriptor_counts_flat():
    """Repeated resets must not leak sockets anywhere.

    Every reset kills a proxied link and poisons the client's cached
    connection; the eviction path must close both ends.  Descriptor
    counts across coordinator and workers must settle back to baseline
    after a burst of reset-heavy jobs.
    """
    # Demo-sized shuffle links carry ~1-2KB each; 512 bytes guarantees
    # every link dies mid-conversation at least once.
    netchaos = NetChaosConfig(
        shuffle=ChaosPolicy(reset_after_bytes=512),
    )
    job, pairs = _demo("wc")
    with ClusterRuntime(2, wire=WIRE, netchaos=netchaos) as runtime:
        first = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
        assert normalized_output("wc", first) == _baseline("wc")
        pids: list = [None, *runtime.worker_pids]
        baseline = {pid: open_fd_count(pid) for pid in pids}
        for _ in range(5):
            job, pairs = _demo("wc")
            result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
            assert normalized_output("wc", result) == _baseline("wc")
        assert runtime.obs.counters.get("netchaos.resets") > 0
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            counts = {pid: open_fd_count(pid) for pid in pids}
            if all(counts[pid] <= baseline[pid] + 3 for pid in pids):
                break
            time.sleep(0.05)
        for pid in pids:
            who = "coordinator" if pid is None else f"worker pid {pid}"
            assert counts[pid] <= baseline[pid] + 3, (
                f"{who} climbed from {baseline[pid]} to {counts[pid]} "
                f"descriptors across reset-chaos jobs"
            )
