"""Checkpoint-driven preemption, end to end on the real cluster.

The contract under test: ``preempt`` asks every uncommitted reduce
attempt to stop at its next wire-batch boundary, cutting a checkpoint
when checkpointing is enabled; the job parks (its submitter raises
:class:`JobPreemptedError`) with map outputs still held on workers; and
``resume_job`` re-grants the stopped reduces, which restore from their
checkpoints and replay only the un-consumed tail — byte-identical
output with strictly fewer refolds than a from-scratch rerun.  The
reconciliation invariant must survive every path::

    restored + replayed + refolded + live == map.output_records

Two chaos rows sharpen the claim: a worker SIGKILLed by the
``preempt-reduce`` directive itself (death mid-preemption-checkpoint),
and a coordinator SIGKILLed between the write-ahead ``job-preempt``
journal record and any worker ack — the crash point where the intent
is durable but nothing has acted on it yet.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import socket
import threading
import time

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.cluster import ClusterRuntime, JobPreemptedError
from repro.cluster.coordinator import Coordinator
from repro.cluster.engine import cluster_recovery
from repro.cluster.journal import Journal, replay_journal
from repro.cluster.worker import worker_main
from repro.core.types import ExecutionMode
from repro.dfs.wire import WireConfig
from repro.engine.recovery import CheckpointPolicy
from repro.engine.threaded import ThreadedEngine
from repro.server import JobServer

RECORDS = 2400
NUM_MAPS = 3
NUM_REDUCERS = 2
WIRE = WireConfig(max_batch_records=32)

_CTX = multiprocessing.get_context("fork")

#: Every records-folded bucket a committed reduce attempt reports; the
#: four must sum to the map-side output, whatever mix of checkpoint
#: restore, tail replay, refold and first-time folding produced them.
BUCKETS = (
    "reduce.restored_records",
    "reduce.replayed_records",
    "reduce.refolded_records",
    "reduce.live_records",
)


def _demo(records: int = RECORDS):
    return demo_job_and_input(
        "wc", ExecutionMode.BARRIERLESS, records=records,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS,
    )


def _baseline(records: int = RECORDS):
    job, pairs = _demo(records)
    result = ThreadedEngine(map_slots=2, wire=WIRE).run(
        job, pairs, num_maps=NUM_MAPS
    )
    return normalized_output("wc", result)


def _recovery():
    return cluster_recovery(checkpoint=CheckpointPolicy(every_records=50))


def _assert_reconciled(counters) -> dict:
    buckets = {name: counters.get(name) for name in BUCKETS}
    assert sum(buckets.values()) == counters.get("map.output_records"), (
        f"fold accounting leaked: {buckets} vs "
        f"map.output_records={counters.get('map.output_records')}"
    )
    return buckets


class _Submitter(threading.Thread):
    """Run submit/run_job in the background, capturing the outcome."""

    def __init__(self, fn):
        super().__init__(daemon=True)
        self._fn = fn
        self.result = None
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            self.result = self._fn()
        except BaseException as exc:  # noqa: BLE001 — JobPreemptedError
            self.error = exc

    def outcome(self, timeout: float = 60.0):
        self.join(timeout=timeout)
        assert not self.is_alive(), "submitter never returned"
        return self.result, self.error


class TestPreemptResume:
    def test_preempt_resume_is_byte_identical_and_replays_only_tail(self):
        job, pairs = _demo()
        with ClusterRuntime(2, wire=WIRE, recovery=_recovery()) as runtime:
            submitter = _Submitter(
                lambda: runtime.run_job(
                    job, pairs, num_maps=NUM_MAPS, job_id="pj",
                    kill={
                        "worker": "*", "trigger": "reduce-delay",
                        "delay_ms": 2,
                    },
                )
            )
            submitter.start()
            time.sleep(1.2)  # maps done, reduces mid-fold
            runtime.preempt_job("pj")
            result, error = submitter.outcome()
            assert result is None
            assert isinstance(error, JobPreemptedError)

            counters = runtime.obs.counters
            assert counters.get("cluster.preempt.jobs") == 1
            assert counters.get("cluster.preempt.parked") == 1
            assert counters.get("cluster.preempt.reduces") >= 1
            status = runtime.status()
            assert status["jobs"]["pj"]["parked"] is True
            assert status["jobs"]["pj"]["preempt_count"] == 1
            assert status["coordinator"]["parked_jobs"] == 1

            resumed = runtime.resume_job("pj")
            assert normalized_output("wc", resumed) == _baseline()
            assert counters.get("cluster.preempt.resumed") == 1
            buckets = _assert_reconciled(counters)
            # The park actually cut state and the resume actually used
            # it: some records came back from checkpoints...
            assert buckets["reduce.restored_records"] > 0
            # ...and strictly fewer records were refolded than a
            # from-scratch rerun would refold.
            assert (
                buckets["reduce.refolded_records"]
                < counters.get("map.output_records")
            )

    def test_preempt_after_done_is_noop(self):
        job, pairs = _demo(records=200)
        with ClusterRuntime(2, wire=WIRE, recovery=_recovery()) as runtime:
            result = runtime.run_job(job, pairs, num_maps=NUM_MAPS, job_id="j")
            assert normalized_output("wc", result) == _baseline(200)
            runtime.preempt_job("j")
            time.sleep(0.3)
            assert runtime.obs.counters.get("cluster.preempt.parked") == 0
            # The cached result is still served.
            assert runtime.resume_job("j") is result


class TestThreeTenantServerDemo:
    def test_fair_share_preempts_and_resumes_across_three_tenants(self):
        # The acceptance demo: a cluster-backed server with three
        # tenants; one tenant hogs both slots with slow jobs, the
        # fair-share kernel checkpoint-parks a hog to let the starved
        # tenants run, and every job — preempted ones included — ends
        # byte-identical to its serial run.
        with JobServer(
            "cluster", slots=2, workers=2,
            tenants={"a": 1.0, "b": 1.0, "c": 1.0},
            recovery=_recovery(), job_deadline_s=120.0,
        ) as server:
            chaos = {"worker": "*", "trigger": "reduce-delay", "delay_ms": 2}
            heavy = [
                server.submit(
                    "a", "wc", records=1200, seed=seed, chaos=chaos
                )
                for seed in (1, 2)
            ]
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if all(
                    server._record(j).state == "running" for j in heavy
                ):
                    break
                time.sleep(0.02)
            light = [
                server.submit(tenant, "wc", records=200, seed=3)
                for tenant in ("b", "c")
            ]
            for job_id in heavy + light:
                record = server.wait(job_id, timeout=120.0)
                assert record.state == "done", record.error

            def serial(records: int, seed: int) -> str:
                from repro.server import output_digest

                job, pairs = demo_job_and_input(
                    "wc", ExecutionMode.BARRIERLESS, records=records,
                    num_reducers=2, num_maps=2, seed=seed,
                )
                result = ThreadedEngine().run(job, pairs, 2)
                return output_digest("wc", result)

            for job_id, seed in zip(heavy, (1, 2)):
                assert server._record(job_id).digest == serial(1200, seed)
            for job_id in light:
                assert server._record(job_id).digest == serial(200, 3)

            counters = server.obs.counters
            assert counters.get("server.preempt.requested") >= 1
            assert counters.get("server.preempt.completed") >= 1
            assert counters.get("server.preempt.resumed") >= 1
            # The slot-hogging tenant was victimised at least once.
            # (Light jobs may be preempted too: occupancy shares are
            # instantaneous, so once the hogs park, the roles flip and
            # the running light jobs become the over-share occupants.)
            assert sum(server._record(j).preempted for j in heavy) >= 1


class TestPreemptChaos:
    def test_worker_sigkilled_mid_preemption_checkpoint(self):
        # w0 SIGKILLs itself the instant the preempt-reduce directive
        # arrives — death mid-preemption, before its cut can ack.  The
        # park must complete anyway (the dead worker's ack is waived by
        # worker-dead handling) and the resume must still be
        # byte-identical with reconciled fold accounting.
        job, pairs = _demo()
        with ClusterRuntime(2, wire=WIRE, recovery=_recovery()) as runtime:
            submitter = _Submitter(
                lambda: runtime.run_job(
                    job, pairs, num_maps=NUM_MAPS, job_id="pk",
                    kill={
                        "worker": "w0", "trigger": "preempt-kill",
                        "delay_ms": 2,
                    },
                )
            )
            submitter.start()
            time.sleep(1.2)
            runtime.preempt_job("pk")
            result, error = submitter.outcome()
            assert result is None
            assert isinstance(error, JobPreemptedError)
            counters = runtime.obs.counters
            assert counters.get("cluster.preempt.parked") == 1
            assert counters.get("cluster.workers.lost") >= 1

            resumed = runtime.resume_job("pk")
            assert normalized_output("wc", resumed) == _baseline()
            _assert_reconciled(counters)


# -- coordinator SIGKILL between journal record and worker ack ----------


def _free_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class _PreemptSuicidalJournal(Journal):
    """SIGKILLs the owning process right after a ``job-preempt`` append.

    The record is durably on disk but the coordinator dies before
    sending a single ``preempt-reduce`` — the sharpest write-ahead
    crash point of the preemption protocol: intent recorded, nothing
    acted on, no worker ever acked.
    """

    def append(self, kind: str, fields: dict) -> int:
        written = super().append(kind, fields)
        if kind == "job-preempt":
            os.kill(os.getpid(), signal.SIGKILL)
        return written


def _doomed_preempting_coordinator(
    port: int, journal_path: str, checkpoint_root: str
) -> None:
    """Child 1: submit, preempt mid-reduce; the journal kills us."""
    coordinator = Coordinator(
        port=port, journal=_PreemptSuicidalJournal(journal_path)
    )
    coordinator.wait_for_workers(2, timeout=20.0)
    job, pairs = _demo()
    submitter = threading.Thread(
        target=lambda: coordinator.submit(
            job, pairs, NUM_MAPS,
            wire=WIRE, recovery=_recovery(),
            checkpoint_root=checkpoint_root, deadline_s=60.0,
            kill={"worker": "*", "trigger": "reduce-delay", "delay_ms": 2},
        ),
        daemon=True,
    )
    submitter.start()
    time.sleep(1.2)  # reduces mid-fold, checkpoints on disk
    coordinator.preempt("job-1")
    time.sleep(30.0)  # unreachable: the journal append SIGKILLs first
    os._exit(1)


def _resuming_preempt_coordinator(
    port: int, journal_path: str, out_path: str
) -> None:
    """Child 2: replay the journal (preempt intent included), finish."""
    coordinator = Coordinator(port=port, journal=Journal(journal_path))
    try:
        coordinator.wait_for_workers(2, timeout=25.0)
        results = coordinator.resume()
        payload = {
            "results": results,
            "counters": coordinator.obs.counters.as_dict(),
        }
    finally:
        coordinator.shutdown()
    with open(out_path, "wb") as fh:
        pickle.dump(payload, fh)


def test_coordinator_sigkill_between_preempt_record_and_ack(tmp_path):
    journal_path = str(tmp_path / "coordinator.journal")
    out_path = str(tmp_path / "resume.pickle")
    checkpoint_root = str(tmp_path / "checkpoints")
    os.makedirs(checkpoint_root, exist_ok=True)
    port = _free_port()

    workers = [
        _CTX.Process(
            target=worker_main, args=(f"w{i}", "127.0.0.1", port), daemon=True
        )
        for i in range(2)
    ]
    for process in workers:
        process.start()
    try:
        doomed = _CTX.Process(
            target=_doomed_preempting_coordinator,
            args=(port, journal_path, checkpoint_root),
        )
        doomed.start()
        doomed.join(timeout=30.0)
        assert doomed.exitcode == -signal.SIGKILL

        # The preempt intent is durable — the last decodable record.
        records, _stats = replay_journal(journal_path)
        assert ("job-preempt", {"job_id": "job-1"}) in [
            (kind, {"job_id": fields.get("job_id")})
            for kind, fields in records
            if kind == "job-preempt"
        ]

        resumed = _CTX.Process(
            target=_resuming_preempt_coordinator,
            args=(port, journal_path, out_path),
        )
        resumed.start()
        resumed.join(timeout=90.0)
        assert resumed.exitcode == 0, "resume coordinator failed"

        with open(out_path, "rb") as fh:
            payload = pickle.load(fh)
        results = payload["results"]
        counters = payload["counters"]

        assert list(results) == ["job-1"]
        assert normalized_output("wc", results["job-1"]) == _baseline()
        assert counters.get("cluster.journal.replayed", 0) > 0
        assert counters.get("cluster.resume.jobs") == 1
        # Fold accounting reconciles across the crash splice: every
        # map-side record lands in exactly one bucket of exactly one
        # committed attempt.
        buckets = {name: counters.get(name, 0) for name in BUCKETS}
        assert sum(buckets.values()) == counters.get("map.output_records")
        assert counters.get("map.tasks") == NUM_MAPS
    finally:
        for process in workers:
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)


def test_preempt_storm_soak():
    """Many preempt/resume rounds against one server; scaled by env.

    ``REPRO_SERVER_SOAK_JOBS`` bounds the number of heavy jobs (each
    heavy job is one preempt/resume round candidate); the default keeps
    the tier-2 run short while the CI soak step turns it up.
    """
    rounds = max(2, int(os.environ.get("REPRO_SERVER_SOAK_JOBS", "4")) // 2)
    with JobServer(
        "cluster", slots=2, workers=2,
        tenants={"a": 1.0, "b": 1.0, "c": 1.0},
        recovery=_recovery(), job_deadline_s=120.0,
    ) as server:
        chaos = {"worker": "*", "trigger": "reduce-delay", "delay_ms": 2}
        for round_no in range(rounds):
            heavy = [
                server.submit(
                    "a", "wc", records=900, seed=round_no, chaos=chaos
                )
                for _ in range(2)
            ]
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if any(
                    server._record(j).state == "running" for j in heavy
                ):
                    break
                time.sleep(0.02)
            light = [
                server.submit(t, "wc", records=150, seed=round_no)
                for t in ("b", "c")
            ]
            for job_id in heavy + light:
                record = server.wait(job_id, timeout=120.0)
                assert record.state == "done", record.error
        # No leaked slots or bytes after the storm.
        snapshot = server._kernel.snapshot()
        assert snapshot["running"] == 0
        assert snapshot["queued"] == 0
        assert snapshot["live_bytes"] == 0 and snapshot["queued_bytes"] == 0
        assert server.obs.counters.get("server.preempt.requested") >= 1
