"""Property suite for the coordinator write-ahead journal.

The journal's whole contract is three properties, and each is tested
as a property, not an example:

1. **Round-trip** — any sequence of records of any known kind replays
   back exactly, in order, with stats accounting for every byte.
2. **Truncation** — cutting the file at *any* byte offset (a torn tail
   from SIGKILL mid-write) replays to a prefix of what was written;
   records past the cut are discarded, never reconstructed.
3. **Corruption** — flipping *any* single bit anywhere in the file
   either leaves a CRC-validated prefix or nothing; replay never raises
   and never fabricates a record that was not written.  "Fabricates"
   includes mutation: every replayed record must be byte-equal to a
   written one at the same position.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.journal import (
    Journal,
    JournalError,
    RECORD_KINDS,
    replay_journal,
)

settings.load_profile("ci")

#: One scratch directory for the whole module: hypothesis forbids
#: function-scoped fixtures under @given, and ``_write`` overwrites the
#: same file per example anyway.
_TMP = tempfile.mkdtemp(prefix="repro-journal-props-")

_scalars = st.one_of(
    st.integers(min_value=-(2**60), max_value=2**60),
    st.text(max_size=20),
    st.binary(max_size=40),
    st.booleans(),
    st.none(),
)

_fields = st.dictionaries(
    st.text(min_size=1, max_size=12), _scalars, max_size=5
)

_records = st.lists(
    st.tuples(st.sampled_from(RECORD_KINDS), _fields), max_size=8
)


def _write(records) -> str:
    path = os.path.join(_TMP, "journal")
    if os.path.exists(path):
        os.unlink(path)
    # fsync off: these properties exercise replay, not durability, and
    # hypothesis runs hundreds of examples.
    with Journal(path, fsync=False) as journal:
        for kind, fields in records:
            journal.append(kind, fields)
    return path


@given(records=_records)
def test_round_trip_every_kind(records):
    path = _write(records)
    replayed, stats = replay_journal(path)
    assert replayed == records
    assert stats.records == len(records)
    assert stats.torn_bytes == 0
    assert stats.bytes_replayed == os.path.getsize(path)


@given(records=_records, data=st.data())
def test_truncation_replays_to_a_valid_prefix(records, data):
    path = _write(records)
    size = os.path.getsize(path)
    cut = data.draw(st.integers(min_value=0, max_value=size), label="cut")
    blob = open(path, "rb").read()[:cut]
    with open(path, "wb") as fh:
        fh.write(blob)
    replayed, stats = replay_journal(path)
    assert replayed == records[: len(replayed)]
    assert stats.bytes_replayed + stats.torn_bytes == cut
    if cut == size:
        assert replayed == records  # no-op truncation loses nothing


@given(records=_records, data=st.data())
def test_bit_flip_never_fabricates_state(records, data):
    path = _write(records)
    size = os.path.getsize(path)
    if size == 0:
        replayed, _stats = replay_journal(path)
        assert replayed == []
        return
    offset = data.draw(
        st.integers(min_value=0, max_value=size - 1), label="offset"
    )
    bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
    blob = bytearray(open(path, "rb").read())
    blob[offset] ^= 1 << bit
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    replayed, stats = replay_journal(path)
    # Never raises (by virtue of reaching here), never invents records:
    # whatever survives is byte-equal to a written prefix.
    assert replayed == records[: len(replayed)]
    assert stats.bytes_replayed + stats.torn_bytes == size


def test_missing_file_replays_to_nothing(tmp_path):
    replayed, stats = replay_journal(os.path.join(str(tmp_path), "absent"))
    assert replayed == []
    assert stats.records == stats.torn_bytes == stats.bytes_replayed == 0


def test_unknown_kind_is_rejected_at_append(tmp_path):
    with Journal(os.path.join(str(tmp_path), "journal")) as journal:
        with pytest.raises(JournalError):
            journal.append("not-a-kind", {})


def test_unencodable_fields_are_rejected_at_append(tmp_path):
    with Journal(os.path.join(str(tmp_path), "journal")) as journal:
        with pytest.raises(JournalError):
            journal.append("job-done", {"job_id": object()})


def test_trailing_garbage_is_torn_tail(tmp_path):
    path = _write([("job-done", {"job_id": "job-1"})])
    good = os.path.getsize(path)
    with open(path, "ab") as fh:
        fh.write(b"\x00\xffgarbage that is not a frame")
    replayed, stats = replay_journal(path)
    assert replayed == [("job-done", {"job_id": "job-1"})]
    assert stats.bytes_replayed == good
    assert stats.torn_bytes == os.path.getsize(path) - good
