"""Coordinator crash recovery and lease-based liveness, end to end.

Two failure classes PR 6 could not survive:

- **Coordinator SIGKILL mid-job.**  The coordinator runs in its own
  forked process over a write-ahead journal and kills itself (SIGKILL,
  from inside ``Journal.append``) right after journaling the second
  ``map-location`` — the record is durable but its broadcast never
  happens, so the job is provably mid-flight.  A second coordinator
  process binds the same port, replays the journal, waits for the
  surviving workers to reconnect and re-register (re-advertising held
  map outputs and still-running reduce attempts), and ``resume()``
  finishes the job.  The output must be byte-identical to a threaded
  run, journaled map outputs must be *reused* (strictly fewer map
  re-grants than a from-scratch run), and ``cluster.journal.replayed``
  must show the replay happened.

- **SIGSTOP'd (wedged) worker.**  The process is alive, its socket
  connected, but nothing moves.  With leases enabled the coordinator
  expires it within ``lease_s`` and reassigns its tasks, finishing the
  job far inside the whole-job deadline; after SIGCONT the worker
  reconnects, re-registers, and serves the next job.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import socket
import time

import pytest

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.cluster import ClusterRuntime
from repro.cluster.coordinator import Coordinator
from repro.cluster.engine import cluster_recovery
from repro.cluster.journal import Journal
from repro.cluster.worker import worker_main
from repro.core.types import ExecutionMode
from repro.dfs.wire import WireConfig
from repro.engine.threaded import ThreadedEngine

RECORDS = 300
NUM_MAPS = 3
NUM_REDUCERS = 2
WIRE = WireConfig(max_batch_records=16)

_CTX = multiprocessing.get_context("fork")


def _demo():
    return demo_job_and_input(
        "wc", ExecutionMode.BARRIERLESS, records=RECORDS,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS,
    )


def _baseline():
    job, pairs = _demo()
    result = ThreadedEngine(map_slots=2, wire=WIRE).run(
        job, pairs, num_maps=NUM_MAPS
    )
    return normalized_output("wc", result)


def _free_port() -> int:
    """A port the coordinator children can (re)bind with SO_REUSEADDR."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class _SuicidalJournal(Journal):
    """SIGKILLs the owning process after N ``map-location`` appends.

    The append completes first — the record is durably on disk — but
    the coordinator dies before acting on it (no broadcast, no state
    update), the sharpest possible write-ahead crash point.
    """

    def __init__(self, path: str, kill_after_locations: int) -> None:
        super().__init__(path)
        self._locations = 0
        self._kill_after = kill_after_locations

    def append(self, kind: str, fields: dict) -> int:
        written = super().append(kind, fields)
        if kind == "map-location":
            self._locations += 1
            if self._locations >= self._kill_after:
                os.kill(os.getpid(), signal.SIGKILL)
        return written


def _doomed_coordinator(port: int, journal_path: str) -> None:
    """Child 1: run the job until the journal SIGKILLs this process."""
    coordinator = Coordinator(
        port=port, journal=_SuicidalJournal(journal_path, 2)
    )
    coordinator.wait_for_workers(2, timeout=20.0)
    job, pairs = _demo()
    coordinator.submit(
        job, pairs, NUM_MAPS,
        wire=WIRE, recovery=cluster_recovery(), deadline_s=30.0,
    )
    os._exit(1)  # unreachable when the chaos fires


def _resuming_coordinator(port: int, journal_path: str, out_path: str) -> None:
    """Child 2: replay the journal, resume the job, report to parent."""
    coordinator = Coordinator(port=port, journal=Journal(journal_path))
    try:
        coordinator.wait_for_workers(2, timeout=25.0)
        results = coordinator.resume()
        payload = {
            "results": results,
            "counters": coordinator.obs.counters.as_dict(),
        }
    finally:
        coordinator.shutdown()
    with open(out_path, "wb") as fh:
        pickle.dump(payload, fh)


def test_coordinator_sigkill_then_resume_is_byte_identical(tmp_path):
    journal_path = str(tmp_path / "coordinator.journal")
    out_path = str(tmp_path / "resume.pickle")
    port = _free_port()

    workers = [
        _CTX.Process(
            target=worker_main, args=(f"w{i}", "127.0.0.1", port), daemon=True
        )
        for i in range(2)
    ]
    for process in workers:
        process.start()
    try:
        doomed = _CTX.Process(
            target=_doomed_coordinator, args=(port, journal_path)
        )
        doomed.start()
        doomed.join(timeout=30.0)
        # SIGKILL from inside Journal.append: negative signal exit, and
        # never the os._exit(1) a completed submit would have reached.
        assert doomed.exitcode == -signal.SIGKILL

        resumed = _CTX.Process(
            target=_resuming_coordinator, args=(port, journal_path, out_path)
        )
        resumed.start()
        resumed.join(timeout=60.0)
        assert resumed.exitcode == 0, "resume coordinator failed"

        with open(out_path, "rb") as fh:
            payload = pickle.load(fh)
        counters = payload["counters"]
        results = payload["results"]

        assert list(results) == ["job-1"]
        assert normalized_output("wc", results["job-1"]) == _baseline()
        # The journal actually drove recovery...
        assert counters.get("cluster.journal.replayed", 0) > 0
        assert counters.get("cluster.resume.jobs") == 1
        # ...and surviving map outputs were reused: strictly fewer maps
        # re-granted than the from-scratch NUM_MAPS.
        assert counters.get("cluster.resume.maps.reused", 0) >= 1
        reassigned = counters.get("cluster.resume.tasks.reassigned", 0)
        assert reassigned < NUM_MAPS + NUM_REDUCERS
        # Counter integrity survives the splice of replayed + live work:
        # every map task counted exactly once.
        assert counters.get("map.tasks") == NUM_MAPS
    finally:
        for process in workers:
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)


def test_sigstopped_worker_expires_lease_and_rejoins():
    job, pairs = _demo()
    baseline = _baseline()
    with ClusterRuntime(
        3, wire=WIRE, lease_s=0.4, deadline_s=30.0
    ) as runtime:
        victim = runtime.worker_pids[-1]
        os.kill(victim, signal.SIGSTOP)
        try:
            started = time.monotonic()
            result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
            elapsed = time.monotonic() - started
        finally:
            os.kill(victim, signal.SIGCONT)
        counters = runtime.obs.counters
        assert normalized_output("wc", result) == baseline
        # The lease, not the 30s job deadline, drove the reassignment.
        assert elapsed < 10.0
        assert counters.get("cluster.lease.expired") == 1
        assert counters.get("cluster.tasks.reassigned") >= 1

        # SIGCONT'd: the worker's closed socket forces a reconnect and
        # re-register, after which it serves jobs again.
        deadline = time.monotonic() + 10.0
        while (
            counters.get("cluster.workers.rejoined") < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert counters.get("cluster.workers.rejoined") >= 1

        job, pairs = _demo()
        second = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
        assert normalized_output("wc", second) == baseline


def test_healthy_cluster_never_expires_leases():
    """Leases are generous enough that healthy workers never trip them."""
    job, pairs = _demo()
    with ClusterRuntime(2, wire=WIRE) as runtime:
        result = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
        assert normalized_output("wc", result) == _baseline()
        assert runtime.obs.counters.get("cluster.lease.expired") == 0
        assert runtime.obs.counters.get("cluster.workers.lost") == 0
