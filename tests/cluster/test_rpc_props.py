"""Property-based tests for the cluster RPC codec (repro.cluster.rpc).

The protocol's safety rests on three invariants, fuzzed here: every
message the codec accepts round-trips bit-exactly; every defective blob
— truncated anywhere, any single bit flipped, length prefix lying or
oversized — raises :class:`~repro.cluster.rpc.RpcError` instead of
decoding garbage; and the socket reader can never be hung or ballooned
by a malicious peer, because the length prefix is validated before any
payload is read and every receive runs under a timeout.
"""

from __future__ import annotations

import os
import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.rpc import (
    MAX_MESSAGE_BYTES,
    MESSAGE_KINDS,
    RpcError,
    decode_message,
    encode_message,
    recv_message,
    send_message,
)

# Field values: everything the typed wire codec supports, NaN excluded
# (breaks equality round-trips) and ints inside the 77-bit varint range.
_ints = st.integers(min_value=-(2**77 - 1), max_value=2**77 - 1)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    _ints,
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)
_fields = st.dictionaries(st.text(max_size=12), _values, max_size=5)
_kinds = st.sampled_from(MESSAGE_KINDS)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(_kinds, _fields)
    def test_every_kind_round_trips(self, kind, fields):
        blob = encode_message(kind, fields)
        assert decode_message(blob) == (kind, fields)

    @settings(max_examples=30, deadline=None)
    @given(_kinds)
    def test_no_fields_decodes_as_empty_dict(self, kind):
        assert decode_message(encode_message(kind)) == (kind, {})

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(RpcError):
            encode_message("not-a-message", {})


class TestDefectiveBlobs:
    @settings(max_examples=150, deadline=None)
    @given(_kinds, _fields, st.data())
    def test_any_truncation_raises(self, kind, fields, data):
        blob = encode_message(kind, fields)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises(RpcError):
            decode_message(blob[:cut])

    @settings(max_examples=150, deadline=None)
    @given(_kinds, _fields, st.data())
    def test_any_bit_flip_raises(self, kind, fields, data):
        blob = bytearray(encode_message(kind, fields))
        position = data.draw(
            st.integers(min_value=0, max_value=len(blob) * 8 - 1)
        )
        blob[position // 8] ^= 1 << (position % 8)
        with pytest.raises(RpcError):
            decode_message(bytes(blob))

    @settings(max_examples=50, deadline=None)
    @given(_kinds, _fields, st.binary(min_size=1, max_size=16))
    def test_trailing_bytes_raise(self, kind, fields, extra):
        with pytest.raises(RpcError):
            decode_message(encode_message(kind, fields) + extra)

    def test_oversized_length_prefix_rejected(self):
        blob = struct.pack(">I", MAX_MESSAGE_BYTES + 1) + b"x"
        with pytest.raises(RpcError):
            decode_message(blob)

    def test_oversized_message_rejected_on_encode(self):
        # Incompressible payload: compressible filler would deflate back
        # under the ceiling and legitimately encode.
        blob = os.urandom(MAX_MESSAGE_BYTES + 1024)
        with pytest.raises(RpcError):
            encode_message("heartbeat", {"blob": blob})


class TestSocketReads:
    """A hostile or dying peer can never hang a socket read."""

    def _pair(self):
        server, client = socket.socketpair()
        server.settimeout(2.0)
        client.settimeout(2.0)
        return server, client

    def test_round_trip_over_socket(self):
        server, client = self._pair()
        try:
            send_message(client, "fetch", {"mapper": 3, "seq": 0})
            assert recv_message(server) == ("fetch", {"mapper": 3, "seq": 0})
        finally:
            server.close()
            client.close()

    def test_peer_death_mid_frame_raises_not_hangs(self):
        server, client = self._pair()
        try:
            blob = encode_message("heartbeat", {"worker": "w0"})
            client.sendall(blob[: len(blob) // 2])
            client.close()
            with pytest.raises(RpcError):
                recv_message(server)
        finally:
            server.close()

    def test_oversized_prefix_raises_before_reading_payload(self):
        server, client = self._pair()
        try:
            # Only the lying prefix is ever sent; if the reader tried to
            # allocate/read the claimed payload it would block and the
            # 2s socket timeout (not RpcError) would fail this test.
            client.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
            with pytest.raises(RpcError):
                recv_message(server)
        finally:
            server.close()
            client.close()

    def test_silent_peer_times_out(self):
        server, client = self._pair()
        try:
            with pytest.raises(socket.timeout):
                recv_message(server, timeout=0.05)
        finally:
            server.close()
            client.close()

    def test_garbage_payload_raises(self):
        server, client = self._pair()
        try:
            client.sendall(struct.pack(">I", 8) + b"\x00" * 8)
            with pytest.raises(RpcError):
                recv_message(server)
        finally:
            server.close()
            client.close()

    def test_concurrent_writers_never_interleave_frames(self):
        """send_message is atomic per call under a caller-held lock."""
        server, client = self._pair()
        lock = threading.Lock()
        errors: list[BaseException] = []

        def blast(worker: str) -> None:
            try:
                for _ in range(50):
                    with lock:
                        send_message(client, "heartbeat", {"worker": worker})
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=blast, args=(f"w{i}",)) for i in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            seen = 0
            while seen < 200:
                kind, fields = recv_message(server)
                assert kind == "heartbeat"
                assert fields["worker"] in {"w0", "w1", "w2", "w3"}
                seen += 1
            assert not errors
        finally:
            for thread in threads:
                thread.join()
            server.close()
            client.close()
