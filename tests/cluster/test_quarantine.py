"""Failure-aware worker quarantine and per-job retry budgets.

The acceptance row: a worker whose ``fail-tasks`` chaos makes every
task raise must be quarantined (``cluster.quarantine.workers >= 1``),
receive no further grants, and the jobs must still complete
byte-identical on the healthy workers.  The tracker itself is pure and
clock-free, so its unit + hypothesis suites run on a virtual clock.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.cluster import (
    ClusterJobError,
    ClusterRuntime,
    ClusterTaskError,
    QuarantineConfig,
    QuarantineTracker,
)
from repro.cluster.journal import replay_journal
from repro.core.types import ExecutionMode
from repro.dfs.wire import WireConfig
from repro.engine.threaded import ThreadedEngine

RECORDS = 300
#: Enough maps that the sick worker receives at least two grants
#: (spread placement), so it can actually cross max_failures=2.
NUM_MAPS = 6
NUM_REDUCERS = 2
WIRE = WireConfig(max_batch_records=16)

SICK = {"worker": "w0", "trigger": "fail-tasks"}


def _demo(seed: int = 0):
    return demo_job_and_input(
        "wc", ExecutionMode.BARRIERLESS, records=RECORDS,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS, seed=seed,
    )


def _baseline(seed: int = 0):
    job, pairs = _demo(seed)
    result = ThreadedEngine(map_slots=2, wire=WIRE).run(
        job, pairs, num_maps=NUM_MAPS
    )
    return normalized_output("wc", result)


class TestQuarantineEndToEnd:
    def test_sick_worker_is_quarantined_and_job_completes(self):
        with ClusterRuntime(
            3, wire=WIRE, task_retries=4, retry_mode="degrade",
            quarantine=QuarantineConfig(
                max_failures=2, window_s=30.0, probation_s=120.0
            ),
        ) as runtime:
            job, pairs = _demo()
            result = runtime.run_job(job, pairs, num_maps=NUM_MAPS, kill=SICK)
            assert normalized_output("wc", result) == _baseline()
            counters = runtime.obs.counters
            assert counters.get("cluster.quarantine.workers") == 1
            assert counters.get("cluster.tasks.failed") >= 2
            assert counters.get("cluster.tasks.retried") >= 1
            status = runtime.status()
            assert status["workers"]["w0"]["quarantined"] is True
            assert status["coordinator"]["quarantined_workers"] == ["w0"]

    def test_no_grants_to_quarantined_worker_afterwards(self, tmp_path):
        # The drain claim, proven from the write-ahead journal: once
        # w0 is quarantined, no map-grant or reduce-grant ever names it
        # again — not for the rest of the sick job, not for the next
        # job either.
        journal_path = str(tmp_path / "coordinator.journal")
        with ClusterRuntime(
            3, wire=WIRE, journal=journal_path,
            task_retries=4, retry_mode="degrade",
            quarantine=QuarantineConfig(
                max_failures=2, window_s=30.0, probation_s=120.0
            ),
        ) as runtime:
            job, pairs = _demo()
            runtime.run_job(
                job, pairs, num_maps=NUM_MAPS, job_id="sick", kill=SICK
            )
            assert runtime.obs.counters.get("cluster.quarantine.workers") == 1
            job, pairs = _demo(seed=1)
            second = runtime.run_job(
                job, pairs, num_maps=NUM_MAPS, job_id="clean"
            )
            assert normalized_output("wc", second) == _baseline(seed=1)

        records, _stats = replay_journal(journal_path)
        grants_to_w0 = [
            (kind, fields["job_id"])
            for kind, fields in records
            if kind in ("map-grant", "reduce-grant")
            and fields.get("worker") == "w0"
        ]
        # w0 received grants only before its quarantine — all within
        # the sick job, and never once for the clean one.
        assert all(job_id == "sick" for _kind, job_id in grants_to_w0)
        clean_grants = [
            fields["worker"]
            for kind, fields in records
            if kind in ("map-grant", "reduce-grant")
            and fields.get("job_id") == "clean"
        ]
        assert clean_grants and "w0" not in set(clean_grants)

    def test_probation_elapses_and_worker_rejoins(self):
        with ClusterRuntime(
            3, wire=WIRE, task_retries=4, retry_mode="degrade",
            quarantine=QuarantineConfig(
                max_failures=2, window_s=30.0, probation_s=1.0
            ),
        ) as runtime:
            job, pairs = _demo()
            result = runtime.run_job(job, pairs, num_maps=NUM_MAPS, kill=SICK)
            assert normalized_output("wc", result) == _baseline()
            counters = runtime.obs.counters
            assert counters.get("cluster.quarantine.workers") == 1
            deadline = time.monotonic() + 10.0
            while (
                counters.get("cluster.quarantine.rejoined") < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert counters.get("cluster.quarantine.rejoined") == 1
            assert runtime.status()["workers"]["w0"]["quarantined"] is False
            # A clean-slate w0 serves the next job (no chaos this time).
            job, pairs = _demo(seed=2)
            second = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
            assert normalized_output("wc", second) == _baseline(seed=2)


class TestRetryBudgets:
    def test_fail_fast_surfaces_the_first_task_failure(self):
        with ClusterRuntime(2, wire=WIRE) as runtime:  # default fail_fast
            job, pairs = _demo()
            with pytest.raises(ClusterJobError, match="injected task failure"):
                runtime.run_job(job, pairs, num_maps=NUM_MAPS, kill=SICK)

    def test_degrade_exhausted_budget_raises_typed_error(self):
        # Both workers are sick, so retries can never land anywhere
        # healthy; once the budget is spent the failure is typed with
        # the task coordinates.
        with ClusterRuntime(
            2, wire=WIRE, task_retries=1, retry_mode="degrade",
            quarantine=QuarantineConfig(max_failures=0),
        ) as runtime:
            job, pairs = _demo()
            with pytest.raises(ClusterTaskError) as info:
                runtime.run_job(
                    job, pairs, num_maps=NUM_MAPS,
                    kill={"worker": "*", "trigger": "fail-tasks"},
                )
            assert info.value.kind in ("map", "reduce")
            assert info.value.index >= 0
            assert info.value.worker in ("w0", "w1")
            assert isinstance(info.value, ClusterJobError)

    def test_degrade_retries_transient_failures_to_completion(self):
        # Only the first two tasks fail (transiently sick worker); the
        # budget absorbs them and the job completes byte-identical,
        # below the quarantine threshold.
        with ClusterRuntime(
            2, wire=WIRE, task_retries=4, retry_mode="degrade",
            quarantine=QuarantineConfig(
                max_failures=10, window_s=30.0, probation_s=60.0
            ),
        ) as runtime:
            job, pairs = _demo()
            result = runtime.run_job(
                job, pairs, num_maps=NUM_MAPS,
                kill={"worker": "w0", "trigger": "fail-tasks", "count": 2},
            )
            assert normalized_output("wc", result) == _baseline()
            counters = runtime.obs.counters
            assert counters.get("cluster.tasks.retried") >= 1
            assert counters.get("cluster.quarantine.workers") == 0

    def test_degrade_with_no_healthy_worker_fails_the_job(self):
        with ClusterRuntime(
            1, wire=WIRE, retry_mode="degrade",
            quarantine=QuarantineConfig(max_failures=0),
        ) as runtime:
            job, pairs = _demo()
            with pytest.raises(ClusterJobError):
                # All of one worker's tasks fail and there is nowhere
                # else to retry: degrade fails the job rather than
                # spinning on the lone sick worker.
                runtime.run_job(
                    job, pairs, num_maps=NUM_MAPS,
                    kill={"worker": "w0", "trigger": "fail-tasks"},
                )


class TestTrackerUnit:
    def test_threshold_and_dedup(self):
        tracker = QuarantineTracker(
            QuarantineConfig(max_failures=2, window_s=10.0, probation_s=5.0)
        )
        assert tracker.record_failure("w0", ("k", 1), now=0.0) is False
        # The same dedup key again is one failure, not two.
        assert tracker.record_failure("w0", ("k", 1), now=0.1) is False
        assert not tracker.is_quarantined("w0", 0.2)
        assert tracker.record_failure("w0", ("k", 2), now=0.2) is True
        assert tracker.is_quarantined("w0", 0.3)
        # Further failures accrue but never re-trigger.
        assert tracker.record_failure("w0", ("k", 3), now=0.4) is False
        assert tracker.entered == 1

    def test_window_slides_failures_out(self):
        tracker = QuarantineTracker(
            QuarantineConfig(max_failures=2, window_s=1.0, probation_s=5.0)
        )
        assert tracker.record_failure("w0", 1, now=0.0) is False
        # 2.0 is outside the window of the failure at 0.0 …
        assert tracker.record_failure("w0", 2, now=2.0) is False
        assert not tracker.is_quarantined("w0", 2.0)
        # … but 2.5 is inside the window of the failure at 2.0.
        assert tracker.record_failure("w0", 3, now=2.5) is True

    def test_sweep_rejoins_with_clean_slate(self):
        tracker = QuarantineTracker(
            QuarantineConfig(max_failures=1, window_s=10.0, probation_s=2.0)
        )
        assert tracker.record_failure("w0", 1, now=0.0) is True
        assert tracker.sweep(1.0) == []
        assert tracker.sweep(2.0) == ["w0"]
        assert not tracker.is_quarantined("w0", 2.0)
        assert tracker.failure_counts() == {}
        # Clean slate: re-quarantine needs a fresh over-budget run.
        assert tracker.record_failure("w0", 1, now=2.5) is True
        assert tracker.entered == 2

    def test_disabled_config_never_quarantines(self):
        tracker = QuarantineTracker(QuarantineConfig(max_failures=0))
        for index in range(50):
            assert tracker.record_failure("w0", index, now=0.0) is False
        assert not tracker.is_quarantined("w0", 0.0)
        assert tracker.quarantined(0.0) == []


@settings(max_examples=200)
@given(
    events=st.lists(
        st.tuples(
            st.sampled_from(["w0", "w1", "w2"]),
            st.integers(min_value=0, max_value=30),  # dedup key
            st.floats(min_value=0.0, max_value=100.0),  # time delta
            st.booleans(),  # sweep between events?
        ),
        min_size=1,
        max_size=60,
    ),
    max_failures=st.integers(min_value=1, max_value=4),
    window_s=st.floats(min_value=0.5, max_value=20.0),
    probation_s=st.floats(min_value=0.5, max_value=20.0),
)
def test_tracker_invariants(events, max_failures, window_s, probation_s):
    """Clock-driven property storm over the tracker:

    - a worker is quarantined iff its *newly-quarantines* report said
      so, and stays so for exactly the probation window;
    - a quarantined worker is always in ``quarantined(now)`` (so the
      coordinator's eligible set can never include it);
    - time never runs backwards for the tracker (we feed a
      monotonically non-decreasing clock) and sweeps are the only way
      out of quarantine.
    """
    tracker = QuarantineTracker(
        QuarantineConfig(
            max_failures=max_failures,
            window_s=window_s,
            probation_s=probation_s,
        )
    )
    now = 0.0
    quarantined_since: dict[str, float] = {}
    model_entered = 0
    for worker, key, delta, do_sweep in events:
        now += delta
        if do_sweep:
            for name in tracker.sweep(now):
                entered = quarantined_since.pop(name)
                assert now - entered >= probation_s
        newly = tracker.record_failure(worker, key, now)
        if newly:
            assert worker not in quarantined_since
            quarantined_since[worker] = now
            model_entered += 1
        for name, entered in quarantined_since.items():
            if now - entered < probation_s:
                assert tracker.is_quarantined(name, now)
                assert name in tracker.quarantined(now)
        for name in ("w0", "w1", "w2"):
            if name not in quarantined_since:
                # Never entered (or swept out): must be eligible.
                assert not tracker.is_quarantined(name, now)
    # The cumulative entry count matches the model exactly.
    assert tracker.entered == model_entered
