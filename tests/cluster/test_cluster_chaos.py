"""Process-kill chaos: SIGKILL real workers, require identical output.

The failure mode the cluster runtime exists to survive: a worker
process killed with SIGKILL — no exception path, no socket shutdown,
no flush — mid-shuffle (its map outputs die with its shuffle server)
and mid-reduce (its in-flight fold vanishes).  In every scenario the
job must still complete with output byte-identical to a fault-free
threaded run, recovery visible only in the counters: workers lost,
tasks reassigned, and (with checkpointing) the four-way record
classification reconciling to the full partition total.

The retry budget in :func:`~repro.cluster.engine.cluster_recovery` is
deliberately generous: a legitimately exhausted budget surfaces as
:class:`~repro.cluster.ClusterJobError` ("GAVE-UP"), which fails these
tests — recovery that merely errors out politely is not recovery.
"""

from __future__ import annotations

import pytest

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.cluster import ClusterRuntime, cluster_recovery
from repro.core.types import ExecutionMode
from repro.dfs.wire import WireConfig
from repro.engine.threaded import ThreadedEngine
from repro.memory.checkpoint import CheckpointPolicy

RECORDS = 300
NUM_MAPS = 3
NUM_REDUCERS = 2

#: Small batches: kill triggers and checkpoint policies both land at
#: wire-batch boundaries, so 16-record batches keep them meaningful.
WIRE = WireConfig(max_batch_records=16)

#: Snapshot every 20 folded records; the victim dies at ~60, so at
#: least two snapshots exist before the SIGKILL.
KILL_AFTER_RECORDS = 60
CHECKPOINT_EVERY = 20

_baselines: dict = {}


def _demo(app: str):
    return demo_job_and_input(
        app, ExecutionMode.BARRIERLESS, records=RECORDS,
        num_reducers=NUM_REDUCERS, num_maps=NUM_MAPS,
    )


def _baseline(app: str):
    if app not in _baselines:
        job, pairs = _demo(app)
        result = ThreadedEngine(map_slots=2, wire=WIRE).run(
            job, pairs, num_maps=NUM_MAPS
        )
        _baselines[app] = normalized_output(app, result)
    return _baselines[app]


def _buckets(obs):
    return {
        name: obs.counters.get(f"reduce.{name}_records")
        for name in ("restored", "replayed", "refolded", "live")
    }


def test_sigkill_mid_shuffle_recovers():
    """Worker killed while serving shuffle batches: map re-execution.

    The victim dies with sockets mid-stream; its map outputs are gone,
    so the coordinator must re-execute them under a bumped epoch and
    the surviving reducers' fetch streams must epoch-restart — all over
    real TCP.
    """
    job, pairs = _demo("wc")
    with ClusterRuntime(2, wire=WIRE) as runtime:
        result = runtime.run_job(
            job, pairs, num_maps=NUM_MAPS,
            kill={"worker": "w1", "trigger": "serves", "count": 2},
        )
        counters = runtime.obs.counters
        assert normalized_output("wc", result) == _baseline("wc")
        assert counters.get("cluster.workers.lost") == 1
        assert counters.get("cluster.tasks.reassigned") >= 1


def test_sigkill_after_map_done_forces_reexecution():
    """Worker killed right after completing a map task.

    Its map-done already reached the coordinator and was broadcast; the
    re-execution path must supersede the stale location with a higher
    epoch rather than leaving reducers fetching from a corpse.
    """
    job, pairs = _demo("wc")
    with ClusterRuntime(2, wire=WIRE) as runtime:
        result = runtime.run_job(
            job, pairs, num_maps=NUM_MAPS,
            kill={"worker": "w1", "trigger": "map-done", "count": 1},
        )
        counters = runtime.obs.counters
        assert normalized_output("wc", result) == _baseline("wc")
        assert counters.get("cluster.workers.lost") == 1
        assert counters.get("map.reexecutions") >= 1


def test_sigkill_mid_reduce_refolds_without_checkpoint():
    """Worker killed mid-fold, no checkpointing: full refold elsewhere."""
    job, pairs = _demo("wc")
    with ClusterRuntime(2, wire=WIRE) as runtime:
        result = runtime.run_job(
            job, pairs, num_maps=NUM_MAPS,
            kill={
                "worker": "w1", "trigger": "reduce-records",
                "count": KILL_AFTER_RECORDS,
            },
        )
        counters = runtime.obs.counters
        assert normalized_output("wc", result) == _baseline("wc")
        assert counters.get("cluster.workers.lost") == 1
        # Nothing to resume from: restores must not be fabricated.
        assert counters.get("reduce.restored_records") == 0
        assert counters.get("reduce.checkpoint.restores") == 0


@pytest.mark.parametrize("app", ("wc", "sort"))
def test_sigkill_mid_reduce_resumes_from_checkpoint(app):
    """Worker killed mid-fold with checkpointing: resume over TCP.

    ``maps-first`` placement keeps every map task off the victim, so no
    epoch changes when it dies and the replacement attempt's snapshot
    is valid — the restore path, not the refold fallback, must carry
    the partition.  The four-way classification must reconcile to the
    job's full map output.
    """
    recovery = cluster_recovery(
        checkpoint=CheckpointPolicy(every_records=CHECKPOINT_EVERY)
    )
    job, pairs = _demo(app)
    with ClusterRuntime(
        2, wire=WIRE, recovery=recovery, placement="maps-first"
    ) as runtime:
        result = runtime.run_job(
            job, pairs, num_maps=NUM_MAPS,
            kill={
                "worker": "w1", "trigger": "reduce-records",
                "count": KILL_AFTER_RECORDS,
            },
        )
        obs = runtime.obs
        assert normalized_output(app, result) == _baseline(app)
        assert obs.counters.get("cluster.workers.lost") == 1
        buckets = _buckets(obs)
        assert buckets["restored"] > 0
        # Checkpointing was active on every committed attempt, so the
        # classification covers every partition record exactly once.
        assert sum(buckets.values()) == obs.counters.get("map.output_records")


def test_back_to_back_chaos_jobs_reuse_nothing_stale():
    """A runtime that lost a worker still runs the next job correctly."""
    with ClusterRuntime(3, wire=WIRE) as runtime:
        job, pairs = _demo("wc")
        first = runtime.run_job(
            job, pairs, num_maps=NUM_MAPS,
            kill={"worker": "w2", "trigger": "serves", "count": 2},
        )
        assert normalized_output("wc", first) == _baseline("wc")
        # w2 is dead; the follow-up job must run on the survivors and
        # must not inherit locations or outputs from the chaos job.
        job, pairs = _demo("grep")
        second = runtime.run_job(job, pairs, num_maps=NUM_MAPS)
        assert normalized_output("grep", second) == _baseline("grep")
