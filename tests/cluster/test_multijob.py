"""Concurrent multi-job regression: one runtime, many jobs at once.

Before PR 9 the coordinator drained its inbox on the submitting thread
and the runtime numbered checkpoint directories with an unsynchronised
counter — two concurrent ``run_job`` calls could interleave messages
and share a checkpoint subtree.  These tests pin the fixed behaviour:
jobs submitted from many threads over one :class:`ClusterRuntime`
finish byte-identical to serial runs, checkpoint roots are namespaced
by job id, and the shuffle store never mixes jobs' partitions.
"""

from __future__ import annotations

import os
import threading

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.cluster import ClusterRuntime, cluster_recovery
from repro.core.types import ExecutionMode
from repro.dfs.wire import WireConfig
from repro.memory.checkpoint import CheckpointPolicy

APPS = ("wc", "grep", "sort")
RECORDS = 120


def _demo(app: str, seed: int):
    return demo_job_and_input(
        app,
        ExecutionMode.BARRIERLESS,
        records=RECORDS,
        num_reducers=2,
        num_maps=2,
        seed=seed,
    )


def _serial_outputs(runtime: ClusterRuntime) -> dict[str, object]:
    outputs = {}
    for index, app in enumerate(APPS):
        job, pairs = _demo(app, seed=index)
        result = runtime.run_job(job, pairs, num_maps=2)
        outputs[app] = normalized_output(app, result)
    return outputs


def test_concurrent_jobs_match_serial_outputs():
    wire = WireConfig(max_batch_records=32)
    with ClusterRuntime(2, wire=wire) as runtime:
        expected = _serial_outputs(runtime)

        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def run_one(app: str, seed: int) -> None:
            try:
                job, pairs = _demo(app, seed=seed)
                result = runtime.run_job(job, pairs, num_maps=2)
                results[app] = normalized_output(app, result)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run_one, args=(app, index))
            for index, app in enumerate(APPS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors
        assert results == expected

        # The coordinator really interleaved them: every job is on the
        # books and complete.
        status = runtime.status()
        done = [j for j in status["jobs"].values() if j["done"]]
        assert len(done) == 2 * len(APPS)


def test_checkpoint_roots_are_namespaced_by_job_id(tmp_path):
    # Two concurrent checkpointing jobs must snapshot into disjoint
    # per-job subtrees of the shared checkpoint directory — the old
    # runtime counter handed both threads the same subdir.
    recovery = cluster_recovery(
        checkpoint=CheckpointPolicy(every_records=10),
        checkpoint_dir=str(tmp_path),
    )
    wire = WireConfig(max_batch_records=16)
    with ClusterRuntime(2, wire=wire, recovery=recovery) as runtime:
        outputs: dict[int, object] = {}
        errors: list[BaseException] = []

        def run_one(seed: int) -> None:
            try:
                job, pairs = _demo("wc", seed=seed)
                result = runtime.run_job(job, pairs, num_maps=2)
                outputs[seed] = normalized_output("wc", result)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run_one, args=(seed,))
            for seed in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors
        assert outputs[0] != outputs[1]  # different seeds, different data

        job_dirs = sorted(
            entry for entry in os.listdir(tmp_path)
            if entry.startswith("job-")
        )
        assert len(job_dirs) == 2, job_dirs

        # Serial reruns agree — the concurrent checkpoints never bled
        # into each other's state.
        for seed in (0, 1):
            job, pairs = _demo("wc", seed=seed)
            result = runtime.run_job(job, pairs, num_maps=2)
            assert normalized_output("wc", result) == outputs[seed]


def test_malformed_frame_does_not_kill_dispatcher():
    # One bad frame on the coordinator inbox (here: a gen that fails
    # int()) used to raise out of the lone dispatcher thread, hanging
    # every active and future job.  It must be counted and dropped.
    with ClusterRuntime(2) as runtime:
        runtime._coordinator._inbox.put(
            ("worker-dead", {"worker": "w0", "gen": "bogus"})
        )
        outcome: dict[str, object] = {}

        def run_one() -> None:
            try:
                job, pairs = _demo("wc", seed=7)
                result = runtime.run_job(job, pairs, num_maps=2)
                outcome["output"] = normalized_output("wc", result)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                outcome["error"] = exc

        thread = threading.Thread(target=run_one)
        thread.start()
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "dispatcher died: job never finished"
        assert "error" not in outcome, outcome
        assert runtime.obs.counters.get("cluster.dispatch.errors") >= 1


def test_shuffle_store_holds_are_keyed_by_job() -> None:
    # Unit-level pin for the store half of the audit: two jobs' mapper-0
    # outputs coexist under distinct (job, mapper, epoch) keys.
    from repro.cluster.shuffle import ShuffleStore

    store = ShuffleStore()
    for job_id in ("job-1", "job-2"):
        store.publish(job_id, mapper=0, epoch=0, batches={0: []})
    held = store.held()
    assert ("job-1", 0, 0) in held and ("job-2", 0, 0) in held
    # Dropping one job leaves the other untouched.
    store.drop_job("job-1")
    held = store.held()
    assert ("job-1", 0, 0) not in held and ("job-2", 0, 0) in held
