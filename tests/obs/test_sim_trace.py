"""Simulator observability: virtual-time spans in the real engines' schema."""

from __future__ import annotations

from repro.core.types import ExecutionMode
from repro.obs import JobObservability, validate_span_nesting
from repro.sim.hadoop import HadoopSimulator, MemoryTechnique, NodeFailure
from repro.sim.workload import wordcount_profile


def run_sim(mode: ExecutionMode, **kwargs):
    obs = JobObservability()
    sim = HadoopSimulator()
    result = sim.run(wordcount_profile(1.0), 4, mode, obs=obs, **kwargs)
    return result, obs


def test_sim_spans_are_well_nested_virtual_time():
    for mode in ExecutionMode:
        result, obs = run_sim(mode)
        spans = obs.tracer.spans()
        assert validate_span_nesting(spans) == []
        (job_span,) = [span for span in spans if span.kind == "job"]
        assert job_span.attrs["engine"] == "sim"
        assert job_span.attrs["mode"] == mode.value
        # Virtual times, not wall clock: the job span covers the whole
        # simulated execution, far longer than the test itself ran.
        assert job_span.end >= result.completion_time > 10.0


def test_sim_op_spans_follow_the_mode():
    _, barrier_obs = run_sim(ExecutionMode.BARRIER)
    barrier_ops = {span.name for span in barrier_obs.tracer.spans(kind="op")}
    assert barrier_ops == {"shuffle", "sort", "reduce"}

    _, barrierless_obs = run_sim(ExecutionMode.BARRIERLESS)
    pipelined_ops = {
        span.name for span in barrierless_obs.tracer.spans(kind="op")
    }
    assert pipelined_ops == {"shuffle+reduce", "output"}


def test_sim_counters_use_engine_schema():
    result, obs = run_sim(ExecutionMode.BARRIERLESS)
    counters = obs.counters
    assert counters.get("map.tasks") == len(result.map_finish_times)
    assert counters.get("reduce.tasks") == len(result.reducers)
    assert counters.get("task.attempts") == (
        counters.get("task.attempts.map") + counters.get("task.attempts.reduce")
    )
    assert counters.get("shuffle.records") > 0


def test_sim_node_failure_counts_reexecutions():
    profile = wordcount_profile(2.0)
    obs = JobObservability()
    sim = HadoopSimulator()
    result = sim.run(
        profile,
        4,
        ExecutionMode.BARRIERLESS,
        failure=NodeFailure(node_id=0, at_time=20.0),
        obs=obs,
    )
    assert result.reexecuted_maps > 0
    assert obs.counters.get("task.retries") == result.reexecuted_maps
    assert obs.counters.get("sim.reexecuted_maps") == result.reexecuted_maps
    assert obs.counters.get("task.attempts.map") == (
        len(result.map_finish_times) + result.reexecuted_maps
    )
    assert validate_span_nesting(obs.tracer.spans()) == []


def test_sim_oom_kill_keeps_trace_well_formed():
    obs = JobObservability()
    sim = HadoopSimulator()
    result = sim.run(
        wordcount_profile(16.0),
        4,
        ExecutionMode.BARRIERLESS,
        technique=MemoryTechnique("inmemory"),
        obs=obs,
    )
    assert result.failed
    spans = obs.tracer.spans()
    assert validate_span_nesting(spans) == []
    killed = [span for span in spans if span.attrs.get("oom_killed")]
    assert killed, "the OOM-killed reducer must be flagged in its task span"


def test_obs_none_is_untouched_default():
    sim = HadoopSimulator()
    result = sim.run(wordcount_profile(1.0), 4, ExecutionMode.BARRIER)
    assert result.completion_time > 0.0
