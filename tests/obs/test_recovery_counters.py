"""Recovery observability: every recovered fault must reconcile.

The recovery counters are not decorative — they obey arithmetic
identities that make silent data loss or double-consumption impossible
to miss:

- ``task.attempts == map.tasks + reduce.tasks + task.retries`` (every
  extra attempt is a counted retry, including map re-executions);
- ``shuffle.records.fetched == consumed + deduped`` (the fetch ledger
  classifies every delivered record exactly once);
- fetch streams appear as ``op`` spans with their retry/timeout totals,
  and the trace stays well-nested through crashes and re-executions.
"""

from __future__ import annotations

import pytest

from repro.apps.demo import demo_job_and_input
from repro.core.types import ExecutionMode
from repro.engine.faults import FaultInjector
from repro.engine.recovery import FetchFaultInjector
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability, validate_span_nesting


def _run_threaded(mode, fault_injector=None, fetch_injector=None):
    obs = JobObservability()
    job, pairs = demo_job_and_input("wc", mode, records=400)
    engine = ThreadedEngine(
        map_slots=2,
        fault_injector=fault_injector,
        fetch_injector=fetch_injector,
        obs=obs,
    )
    engine.run(job, pairs, num_maps=3)
    return obs


def _assert_attempts_reconcile(counters):
    assert counters.get("task.attempts") == (
        counters.get("map.tasks")
        + counters.get("reduce.tasks")
        + counters.get("task.retries")
    )


def _assert_ledger_reconciles(counters):
    assert counters.get("shuffle.records.fetched") == (
        counters.get("shuffle.records.consumed")
        + counters.get("shuffle.records.deduped")
    )


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_clean_run_reconciles_with_zero_recovery(mode):
    counters = _run_threaded(mode).counters
    _assert_attempts_reconcile(counters)
    _assert_ledger_reconciles(counters)
    assert counters.get("task.retries") == 0
    assert counters.get("shuffle.records.deduped") == 0
    assert counters.get("shuffle.records.fetched") == counters.get(
        "shuffle.records"
    )
    # Fault-only counters are never materialised on a clean run, so the
    # cross-engine counter-dict equality of the clean suite still holds.
    as_dict = counters.as_dict()
    for name in (
        "shuffle.fetch.retries",
        "shuffle.fetch.timeouts",
        "shuffle.fetch.drops",
        "shuffle.epoch_restarts",
        "shuffle.map_output_lost",
        "map.reexecutions",
        "reduce.restarts",
        "speculative.fetches",
        "speculative.reduces",
    ):
        assert name not in as_dict


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_task_retries_equal_extra_attempts_under_faults(mode):
    counters = _run_threaded(
        mode,
        fault_injector=FaultInjector(failure_probability=0.3, seed=4),
        fetch_injector=FetchFaultInjector(crash_reducer_after={0: 5}),
    ).counters
    assert counters.get("task.retries") >= 1
    _assert_attempts_reconcile(counters)


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_deduped_equals_fetched_minus_consumed_after_lost_output(mode):
    counters = _run_threaded(
        mode, fetch_injector=FetchFaultInjector(lose_output_after={0: 1})
    ).counters
    assert counters.get("shuffle.records.deduped") >= 1
    _assert_ledger_reconciles(counters)
    _assert_attempts_reconcile(counters)
    # The re-execution is a counted retry but not a second map task.
    assert counters.get("map.reexecutions") == 1
    assert counters.get("map.tasks") == 3


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_fetch_spans_carry_retry_totals(mode):
    obs = _run_threaded(
        mode,
        fetch_injector=FetchFaultInjector(
            fail_first_fetch_of=frozenset({(0, 0)})
        ),
    )
    fetch_spans = [
        span for span in obs.tracer.spans(kind="op")
        if span.name.startswith("fetch-")
    ]
    # One stream per (reducer, mapper): 4 reducers x 3 mappers.
    assert len(fetch_spans) == 12
    assert sum(span.attrs["retries"] for span in fetch_spans) == (
        obs.counters.get("shuffle.fetch.retries")
    )
    assert validate_span_nesting(obs.tracer.spans()) == []


@pytest.mark.parametrize("mode", list(ExecutionMode))
def test_trace_stays_nested_through_recovery(mode):
    obs = _run_threaded(
        mode,
        fault_injector=FaultInjector(
            fail_first_attempt_of=frozenset({"reduce-1"})
        ),
        fetch_injector=FetchFaultInjector(lose_output_after={0: 1}),
    )
    assert validate_span_nesting(obs.tracer.spans()) == []
    # The re-executed map appears as its own task span.
    reexec = [
        span for span in obs.tracer.spans(kind="task")
        if span.name.endswith("-reexec")
    ]
    assert len(reexec) == 1
    crashed = [
        span for span in obs.tracer.spans(kind="attempt")
        if span.attrs.get("crashed")
    ]
    assert {span.name for span in crashed} == {"reduce-1/attempt-0"}
