"""Cross-engine counter consistency: one semantics, three executions.

The local, threaded and multiprocessing engines must report *identical*
counter totals for the same job over the same input — concurrency and
process boundaries change timing, never counts.  This is the test that
pins the multiproc counter-merging seam (workers return counter dicts by
value) to the in-process implementations.
"""

from __future__ import annotations

import pytest

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.apps.registry import REGISTRY
from repro.core.types import ExecutionMode
from repro.engine.local import LocalEngine
from repro.engine.multiproc import MultiprocessEngine
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability, validate_span_nesting

APPS = [descriptor.short_name for descriptor in REGISTRY]
MODES = [ExecutionMode.BARRIER, ExecutionMode.BARRIERLESS]


def engines_for(obs_by_name):
    return {
        "local": LocalEngine(obs=obs_by_name["local"]),
        "threaded": ThreadedEngine(map_slots=2, obs=obs_by_name["threaded"]),
        "multiproc": MultiprocessEngine(processes=2, obs=obs_by_name["multiproc"]),
    }


@pytest.mark.parametrize("mode", MODES, ids=[mode.value for mode in MODES])
@pytest.mark.parametrize("app", APPS)
def test_counter_totals_identical_across_engines(app, mode):
    obs_by_name = {name: JobObservability() for name in ("local", "threaded", "multiproc")}
    outputs = {}
    counters = {}
    for name, engine in engines_for(obs_by_name).items():
        job, pairs = demo_job_and_input(app, mode, records=400, seed=5)
        result = engine.run(job, pairs, num_maps=3)
        outputs[name] = normalized_output(app, result)
        counters[name] = obs_by_name[name].counters.as_dict()
    assert counters["local"] == counters["threaded"], (
        f"{app}/{mode.value}: local vs threaded counters diverged"
    )
    assert counters["local"] == counters["multiproc"], (
        f"{app}/{mode.value}: local vs multiproc counters diverged"
    )
    assert outputs["local"] == outputs["threaded"] == outputs["multiproc"]


@pytest.mark.parametrize(
    "engine_name", ["local", "threaded", "multiproc"]
)
def test_every_engine_emits_well_nested_spans(engine_name):
    obs = JobObservability()
    obs_by_name = {"local": obs, "threaded": obs, "multiproc": obs}
    engine = engines_for(obs_by_name)[engine_name]
    job, pairs = demo_job_and_input(
        "wc", ExecutionMode.BARRIERLESS, records=400, seed=5
    )
    engine.run(job, pairs, num_maps=3)
    spans = obs.tracer.spans()
    assert validate_span_nesting(spans) == []
    (job_span,) = [span for span in spans if span.kind == "job"]
    assert job_span.attrs["engine"] in ("local", "threaded", "multiproc")
    stage_names = {span.name for span in spans if span.kind == "stage"}
    assert stage_names == {"map", "reduce"}
    assert len([span for span in spans if span.kind == "task"]) >= 7
