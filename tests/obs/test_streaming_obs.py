"""Streaming-engine observability: long-lived spans, final counters."""

from __future__ import annotations

from repro.apps.demo import demo_job_and_input
from repro.core.types import ExecutionMode
from repro.engine.streaming import StreamingEngine
from repro.obs import JobObservability, validate_span_nesting


def test_streaming_counters_and_spans():
    obs = JobObservability()
    job, pairs = demo_job_and_input("wc", ExecutionMode.BARRIERLESS, records=400)
    engine = StreamingEngine(job, obs=obs)
    third = max(1, len(pairs) // 3)
    for offset in range(0, len(pairs), third):
        engine.push(pairs[offset : offset + third])
    result = engine.close()

    counters = obs.counters
    pushes = counters.get("map.tasks")
    assert pushes >= 3
    assert counters.get("reduce.tasks") == job.num_reducers
    assert counters.get("map.output_records") == result.counters.get(
        "map.output_records"
    )
    assert counters.get("store.builds") == job.num_reducers
    assert counters.get("task.attempts") == pushes + job.num_reducers

    spans = obs.tracer.spans()
    assert validate_span_nesting(spans) == []
    (job_span,) = [span for span in spans if span.kind == "job"]
    assert job_span.attrs["engine"] == "streaming"
    push_spans = [
        span for span in spans if span.kind == "task" and span.name.startswith("push-")
    ]
    assert len(push_spans) == pushes
    reducer_spans = [
        span
        for span in spans
        if span.kind == "task" and span.name.startswith("reduce-")
    ]
    # Long-lived reducer tasks span the whole stream.
    assert len(reducer_spans) == job.num_reducers
    for span in reducer_spans:
        assert span.end >= max(p.end for p in push_spans) - 1e-6
