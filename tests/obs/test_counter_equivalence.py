"""Differential suite: barrier vs barrier-less on the same seeded input.

For every application in the registry, run the same synthetic input
through both execution modes on the reference engine and require:

- records-in / records-out conservation — ``map.input_records``,
  ``map.output_records``, ``shuffle.records`` and
  ``reduce.output_records`` are identical across modes (breaking the
  barrier reroutes records; it must not create or destroy them);
- output equality under each app's normal form (see
  :mod:`repro.apps.demo` for why ga/bs/knn need normalisation).
"""

from __future__ import annotations

import pytest

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.apps.registry import REGISTRY
from repro.core.types import ExecutionMode
from repro.engine.local import LocalEngine
from repro.obs import JobObservability

APPS = [descriptor.short_name for descriptor in REGISTRY]

#: Counters that must match exactly between the two execution modes.
CONSERVED = (
    "map.input_records",
    "map.output_records",
    "map.tasks",
    "shuffle.records",
    "reduce.output_records",
    "reduce.tasks",
)


def run_with_counters(app: str, mode: ExecutionMode):
    obs = JobObservability()
    job, pairs = demo_job_and_input(app, mode, records=600, seed=11)
    result = LocalEngine(obs=obs).run(job, pairs, num_maps=3)
    return result, obs.counters.as_dict()


@pytest.mark.parametrize("app", APPS)
def test_record_counters_conserved_across_modes(app):
    _, barrier = run_with_counters(app, ExecutionMode.BARRIER)
    _, barrierless = run_with_counters(app, ExecutionMode.BARRIERLESS)
    for name in CONSERVED:
        assert barrier.get(name, 0) == barrierless.get(name, 0), (
            f"{app}: {name} diverged between modes "
            f"({barrier.get(name, 0)} vs {barrierless.get(name, 0)})"
        )
    # Record conservation inside each mode: everything the maps emitted
    # reached a reducer.
    for counters in (barrier, barrierless):
        assert counters["shuffle.records"] == counters["map.output_records"]


@pytest.mark.parametrize("app", APPS)
def test_outputs_equal_across_modes(app):
    barrier_result, _ = run_with_counters(app, ExecutionMode.BARRIER)
    barrierless_result, _ = run_with_counters(app, ExecutionMode.BARRIERLESS)
    assert normalized_output(app, barrier_result) == normalized_output(
        app, barrierless_result
    )


@pytest.mark.parametrize("app", APPS)
def test_registry_counters_mirror_job_result_counters(app):
    result, registry_counters = run_with_counters(app, ExecutionMode.BARRIERLESS)
    for name in CONSERVED:
        assert registry_counters.get(name, 0) == result.counters.get(name)
