"""Fault-path observability: attempts, retries and store rebuilds.

A :class:`FaultInjector` killing task attempts must be fully visible in
the counters: ``task.attempts`` reconciles with the runner's bookkeeping,
``task.retries``/``task.failed_attempts`` count the injected crashes, and
a store-backed reducer that retried shows its partial-result store being
rebuilt from scratch (``store.resets``) — the recovery path behind the
paper's claim that barrier removal preserves fault tolerance (§8).
"""

from __future__ import annotations

import pytest

from repro.apps.demo import demo_job_and_input
from repro.core.types import ExecutionMode
from repro.engine.faults import FaultInjector, TaskPermanentlyFailedError
from repro.engine.local import LocalEngine
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability


def test_clean_run_attempts_reconcile_with_runner():
    obs = JobObservability()
    engine = LocalEngine(obs=obs)
    job, pairs = demo_job_and_input("wc", ExecutionMode.BARRIERLESS, records=400)
    engine.run(job, pairs, num_maps=3)
    counters = obs.counters
    assert counters.get("task.attempts") == sum(engine.last_run_attempts.values())
    assert counters.get("task.attempts.map") == 3
    assert counters.get("task.attempts.reduce") == 4
    assert counters.get("task.retries") == 0
    assert counters.get("task.failed_attempts") == 0
    assert counters.get("store.resets") == 0


def test_killed_reduce_attempts_are_counted_and_reconciled():
    injector = FaultInjector(
        fail_first_attempt_of=frozenset({"reduce-0", "reduce-2"})
    )
    obs = JobObservability()
    engine = LocalEngine(fault_injector=injector, obs=obs)
    job, pairs = demo_job_and_input("wc", ExecutionMode.BARRIERLESS, records=400)
    result = engine.run(job, pairs, num_maps=3)
    counters = obs.counters

    assert injector.injected == 2
    assert counters.get("task.retries") == 2
    assert counters.get("task.failed_attempts") == 2
    # attempts = one per task + one per injected retry, and the registry
    # total must equal the runner's own ledger.
    assert counters.get("task.attempts") == 3 + 4 + 2
    assert counters.get("task.attempts") == sum(engine.last_run_attempts.values())
    assert counters.get("task.attempts.reduce") == 4 + 2
    # The job still succeeds with correct totals.
    assert result.counters.get("reduce.tasks") == 4

    # Each killed attempt of a store-backed reducer rebuilt its store.
    assert counters.get("store.resets") == 2

    # Attempt spans: the crashed ones are flagged.
    attempts = obs.tracer.spans(kind="attempt")
    crashed = [span for span in attempts if span.attrs.get("crashed")]
    assert len(crashed) == 2
    assert {span.name for span in crashed} == {
        "reduce-0/attempt-0",
        "reduce-2/attempt-0",
    }


def test_barrier_mode_reduce_retry_has_no_store_resets():
    injector = FaultInjector(fail_first_attempt_of=frozenset({"reduce-1"}))
    obs = JobObservability()
    engine = LocalEngine(fault_injector=injector, obs=obs)
    job, pairs = demo_job_and_input("wc", ExecutionMode.BARRIER, records=400)
    engine.run(job, pairs, num_maps=3)
    # Barrier reducers have no partial-result store to rebuild.
    assert obs.counters.get("store.resets") == 0
    assert obs.counters.get("task.retries") == 1


def test_threaded_map_faults_visible_in_counters():
    injector = FaultInjector(fail_first_attempt_of=frozenset({"map-0", "map-1"}))
    obs = JobObservability()
    engine = ThreadedEngine(
        map_slots=2, fault_injector=injector, obs=obs
    )
    job, pairs = demo_job_and_input("wc", ExecutionMode.BARRIERLESS, records=400)
    engine.run(job, pairs, num_maps=3)
    counters = obs.counters
    assert counters.get("task.retries") == 2
    assert counters.get("task.attempts.map") == 3 + 2
    assert counters.get("map.tasks") == 3


def test_exhausted_attempts_leave_consistent_counters():
    injector = FaultInjector(fail_first_attempt_of=frozenset({"map-0"}))
    obs = JobObservability()
    engine = LocalEngine(fault_injector=injector, max_attempts=1, obs=obs)
    job, pairs = demo_job_and_input("wc", ExecutionMode.BARRIERLESS, records=200)
    with pytest.raises(TaskPermanentlyFailedError):
        engine.run(job, pairs, num_maps=3)
    assert obs.counters.get("task.failed_attempts") == 1
    assert obs.counters.get("task.attempts") == 1
