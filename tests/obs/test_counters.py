"""Unit tests for the hierarchical job-counter registry."""

from __future__ import annotations

import threading

from repro.core.types import Counters
from repro.obs import CounterRegistry


def test_increment_and_get():
    registry = CounterRegistry()
    registry.increment("map.tasks")
    registry.increment("map.tasks", 3)
    assert registry.get("map.tasks") == 4
    assert registry.get("missing") == 0


def test_disabled_registry_records_nothing():
    registry = CounterRegistry(enabled=False)
    registry.increment("map.tasks", 100)
    registry.merge_dict({"reduce.tasks": 5})
    assert registry.as_dict() == {}
    assert len(registry) == 0


def test_merge_dict_and_counters():
    registry = CounterRegistry()
    registry.merge_dict({"a.x": 1, "a.y": 2})
    registry.merge_counters(Counters({"a.x": 10, "b": 5}))
    assert registry.as_dict() == {"a.x": 11, "a.y": 2, "b": 5}


def test_merge_registry():
    a = CounterRegistry()
    b = CounterRegistry()
    a.increment("n", 1)
    b.increment("n", 2)
    b.increment("m", 7)
    a.merge(b)
    assert a.as_dict() == {"n": 3, "m": 7}


def test_group_strips_prefix():
    registry = CounterRegistry()
    registry.merge_dict({"store.cache_hits": 9, "store.cache_misses": 1, "map.tasks": 2})
    assert registry.group("store") == {"cache_hits": 9, "cache_misses": 1}


def test_tree_nests_dotted_names():
    registry = CounterRegistry()
    registry.merge_dict({"task.attempts": 5, "task.attempts.map": 3, "map.tasks": 2})
    tree = registry.tree()
    assert tree["map"]["tasks"] == 2
    # A name that is both a leaf and a prefix keeps its own value under "".
    assert tree["task"]["attempts"][""] == 5
    assert tree["task"]["attempts"]["map"] == 3


def test_clear():
    registry = CounterRegistry()
    registry.increment("x")
    registry.clear()
    assert registry.as_dict() == {}


def test_concurrent_increments_are_exact():
    registry = CounterRegistry()
    per_thread = 5000

    def work():
        for _ in range(per_thread):
            registry.increment("hot")

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.get("hot") == 8 * per_thread
