"""Tests for the time-series metrics layer (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    JobObservability,
    LiveGauge,
    MetricsRegistry,
    MetricsTicker,
    ensure_parent,
    load_metrics,
    write_metrics,
)


class TestTimeSeries:
    def test_sample_and_summary(self):
        metrics = MetricsRegistry(clock=lambda: 0.0)
        for t, value in [(0.0, 2.0), (1.0, 6.0), (2.0, 4.0)]:
            metrics.sample("depth", value, t=t, unit="records")
        series = metrics.series("depth")
        assert series.points() == [(0.0, 2.0), (1.0, 6.0), (2.0, 4.0)]
        assert series.unit == "records"
        assert series.summary() == {
            "n": 3, "min": 2.0, "max": 6.0, "mean": 4.0, "last": 4.0,
        }

    def test_empty_summary_is_zeros(self):
        metrics = MetricsRegistry()
        metrics.sample("s", 1.0)
        assert metrics.series("missing") is None
        from repro.obs.metrics import TimeSeries

        assert TimeSeries("empty").summary()["n"] == 0

    def test_clock_default_used_when_t_omitted(self):
        ticks = iter([1.5, 2.5])
        metrics = MetricsRegistry(clock=lambda: next(ticks))
        metrics.sample("s", 10.0)
        metrics.sample("s", 20.0)
        assert [t for t, _v in metrics.series("s").points()] == [1.5, 2.5]


class TestMaximaAndGauges:
    def test_observe_max_keeps_high_water_mark(self):
        metrics = MetricsRegistry()
        for value in (3.0, 9.0, 5.0):
            metrics.observe_max("hwm", value)
        assert metrics.maxima() == {"hwm": 9.0}

    def test_gauge_sampled_per_tick(self):
        clock = iter([0.0, 1.0, 2.0]).__next__
        metrics = MetricsRegistry(clock=clock)
        depth = LiveGauge()
        metrics.register_gauge("depth", depth.value, unit="records")
        depth.add(4)
        metrics.sample_gauges(t=1.0)
        depth.add(-3)
        metrics.sample_gauges(t=2.0)
        assert metrics.series("depth").points() == [(1.0, 4.0), (2.0, 1.0)]

    def test_rate_is_delta_over_dt(self):
        metrics = MetricsRegistry(clock=lambda: 0.0)
        total = {"v": 0}
        metrics.register_rate("rate", lambda: total["v"], unit="records/s")
        total["v"] = 100
        metrics.sample_gauges(t=2.0)
        total["v"] = 100  # no progress
        metrics.sample_gauges(t=4.0)
        assert metrics.series("rate").values() == [50.0, 0.0]

    def test_failing_gauge_skipped_not_fatal(self):
        metrics = MetricsRegistry()

        def boom():
            raise RuntimeError("gone")

        metrics.register_gauge("bad", boom)
        metrics.register_gauge("good", lambda: 7.0)
        metrics.sample_gauges(t=1.0)
        assert metrics.series("bad") is None
        assert metrics.series("good").values() == [7.0]

    def test_unregister_stops_ticking_keeps_samples(self):
        metrics = MetricsRegistry()
        metrics.register_gauge("g", lambda: 1.0)
        metrics.sample_gauges(t=1.0)
        metrics.unregister("g")
        metrics.sample_gauges(t=2.0)
        assert len(metrics.series("g")) == 1

    def test_disabled_registry_is_a_noop(self):
        metrics = MetricsRegistry(enabled=False)
        metrics.sample("s", 1.0, t=0.0)
        metrics.observe_max("m", 1.0)
        metrics.register_gauge("g", lambda: 1.0)
        metrics.sample_gauges(t=1.0)
        assert len(metrics) == 0
        assert metrics.maxima() == {}


class TestLiveGauge:
    def test_concurrent_adds_balance(self):
        gauge = LiveGauge()

        def work():
            for _ in range(1000):
                gauge.add(1)
                gauge.add(-1)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value() == 0


class TestTicker:
    def test_ticker_samples_and_final_sample_on_stop(self):
        metrics = MetricsRegistry()
        metrics.register_gauge("g", lambda: 42.0)
        ticker = MetricsTicker(metrics, interval_s=0.005)
        ticker.start()
        ticker.stop()
        # stop() always takes a final sample, so even an instant run
        # records at least one point.
        assert len(metrics.series("g")) >= 1
        assert metrics.series("g").values()[-1] == 42.0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MetricsTicker(MetricsRegistry(), interval_s=0.0)

    def test_disabled_registry_never_starts_thread(self):
        metrics = MetricsRegistry(enabled=False)
        ticker = MetricsTicker(metrics, interval_s=0.005)
        ticker.start()
        assert ticker._thread is None
        ticker.stop()


class TestPersistence:
    def test_roundtrip_into_missing_directory(self, tmp_path):
        metrics = MetricsRegistry(clock=lambda: 0.0)
        metrics.sample("depth", 3.0, t=1.0, unit="records")
        metrics.observe_max("hwm", 9.0)
        path = tmp_path / "deep" / "nested" / "metrics.json"
        write_metrics(str(path), metrics)
        loaded = load_metrics(str(path))
        assert loaded["schema"] == 1
        assert loaded["series"]["depth"]["points"] == [[1.0, 3.0]]
        assert loaded["maxima"] == {"hwm": 9.0}

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_metrics(str(path))

    def test_ensure_parent_handles_bare_filename(self):
        assert ensure_parent("metrics.json") == "metrics.json"


class TestBundleIntegration:
    def test_metrics_share_tracer_clock(self):
        obs = JobObservability()
        assert obs.metrics.enabled
        obs.metrics.sample("s", 1.0)
        t = obs.metrics.series("s").points()[0][0]
        assert t >= 0.0

    def test_disabled_bundle_disables_metrics_and_events(self):
        obs = JobObservability.disabled()
        obs.metrics.sample("s", 1.0, t=0.0)
        obs.events.emit("task.start", task="m0")
        assert len(obs.metrics) == 0
        assert len(obs.events) == 0
