"""CLI observability commands: `repro trace` and `repro counters`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.export import spans_from_chrome_trace, validate_span_nesting


@pytest.mark.parametrize("engine", ["local", "threaded", "multiproc"])
def test_trace_emits_valid_chrome_trace(engine, tmp_path, capsys):
    path = tmp_path / f"wc-{engine}.trace.json"
    assert main([
        "trace", "wc", "--records", "300", "--maps", "2", "--reducers", "2",
        "--engine", engine, "-o", str(path),
    ]) == 0
    assert f"wrote {path}" in capsys.readouterr().out

    with open(path, encoding="utf-8") as fh:
        trace = json.load(fh)

    # trace_event object format with a process-name metadata event.
    events = trace["traceEvents"]
    assert events[0]["ph"] == "M"
    assert all(event["ph"] in ("M", "X") for event in events)
    assert all(
        event["dur"] >= 0 for event in events if event["ph"] == "X"
    )

    # The spans reconstruct into a well-nested job → stage → task tree.
    spans = spans_from_chrome_trace(trace)
    assert validate_span_nesting(spans) == []
    kinds = {span.kind for span in spans}
    assert {"job", "stage", "task"} <= kinds

    # Counter totals ride along in the object-format extra key.
    assert trace["counters"]["map.tasks"] == 2
    assert trace["counters"]["reduce.tasks"] == 2


def test_trace_summary_flag_prints_tree(tmp_path, capsys):
    path = tmp_path / "t.json"
    assert main([
        "trace", "wc", "--records", "200", "--maps", "2", "--reducers", "2",
        "-o", str(path), "--summary",
    ]) == 0
    out = capsys.readouterr().out
    assert "[job]" in out
    assert "[stage]" in out


def test_counters_prints_table(capsys):
    assert main([
        "counters", "wc", "--records", "200", "--maps", "2", "--reducers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "map.input_records" in out
    assert "reduce.output_records" in out


def test_counters_diff_runs_both_modes(capsys):
    assert main([
        "counters", "wc", "--records", "200", "--maps", "2", "--reducers", "2",
        "--diff",
    ]) == 0
    out = capsys.readouterr().out
    assert "barrier" in out and "barrierless" in out
    # Record conservation shows up as "=" rows in the diff table.
    for line in out.splitlines():
        if line.startswith("map.output_records"):
            assert line.rstrip().endswith("=")
