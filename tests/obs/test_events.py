"""Tests for the structured event log (repro.obs.events)."""

from __future__ import annotations

from repro.obs import EventLog, ObsEvent, read_event_log, write_event_log


class TestEventLog:
    def test_emit_uses_clock_and_attrs(self):
        ticks = iter([1.25, 2.5])
        log = EventLog(clock=lambda: next(ticks))
        log.emit("task.start", task="m0", stage="map")
        log.emit("task.finish", task="m0", status="ok")
        events = log.events()
        assert [event.t for event in events] == [1.25, 2.5]
        assert events[0].attrs == {"task": "m0", "stage": "map"}

    def test_seq_breaks_equal_timestamp_ties(self):
        log = EventLog()
        for index in range(5):
            log.record("fetch.retry", 3.0, attempt=index)
        attempts = [event.attrs["attempt"] for event in log.events()]
        assert attempts == [0, 1, 2, 3, 4]

    def test_events_sorted_by_time_then_seq(self):
        log = EventLog()
        log.record("late", 9.0)
        log.record("early", 1.0)
        log.record("middle", 5.0)
        assert [event.kind for event in log.events()] == [
            "early", "middle", "late",
        ]

    def test_kind_filter_and_counts(self):
        log = EventLog()
        log.record("task.start", 0.0, task="m0")
        log.record("task.start", 1.0, task="m1")
        log.record("spill", 2.0, bytes=4096)
        assert len(log.events("task.start")) == 2
        assert log.counts() == {"spill": 1, "task.start": 2}
        assert len(log) == 3

    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False)
        log.emit("task.start", task="m0")
        log.record("spill", 1.0)
        assert len(log) == 0


class TestPersistence:
    def test_jsonl_roundtrip_into_missing_directory(self, tmp_path):
        log = EventLog()
        log.record("task.start", 0.5, task="m0", stage="map")
        log.record("spill", 1.5, bytes=4096)
        path = tmp_path / "deep" / "events.jsonl"
        write_event_log(str(path), log)
        lines = path.read_text().splitlines()
        # Header line carries the schema version, then one event per line.
        assert '"schema": 1' in lines[0]
        assert len(lines) == 3
        events = read_event_log(str(path))
        assert [event.kind for event in events] == ["task.start", "spill"]
        assert events[0].attrs == {"task": "m0", "stage": "map"}
        assert events[1].attrs == {"bytes": 4096}

    def test_write_accepts_plain_event_iterable(self, tmp_path):
        events = [ObsEvent(1.0, "task.start", 0, {"task": "r0"})]
        path = tmp_path / "events.jsonl"
        write_event_log(str(path), events)
        assert read_event_log(str(path))[0].kind == "task.start"

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"schema": 1}\n\n{"t": 1.0, "kind": "spill"}\n')
        events = read_event_log(str(path))
        assert len(events) == 1
        assert events[0].seq == 0 and events[0].attrs == {}
