"""Tests for the Chrome trace exporter, validator and text renderers."""

from __future__ import annotations

import json

from repro.obs import (
    CounterRegistry,
    Tracer,
    render_counters,
    render_trace_summary,
    to_chrome_trace,
    validate_span_nesting,
    write_chrome_trace,
)
from repro.obs.export import spans_from_chrome_trace
from repro.obs.trace import Span


def make_tracer() -> Tracer:
    tracer = Tracer()
    job = tracer.record("job", "job", 0.0, 10.0, mode="barrierless")
    stage = tracer.record("map", "stage", 0.0, 6.0, parent=job)
    tracer.record("map-0", "task", 0.5, 3.0, parent=stage)
    tracer.record("map-1", "task", 1.0, 5.5, parent=stage, tid=7)
    return tracer


def test_to_chrome_trace_event_format():
    counters = CounterRegistry()
    counters.increment("map.tasks", 2)
    trace = to_chrome_trace(make_tracer(), counters, process_name="demo")
    events = trace["traceEvents"]
    meta = events[0]
    assert meta["ph"] == "M" and meta["args"]["name"] == "demo"
    xs = [event for event in events if event["ph"] == "X"]
    assert len(xs) == 4
    job = next(event for event in xs if event["name"] == "job")
    assert job["ts"] == 0.0
    assert job["dur"] == 10.0 * 1e6  # microseconds
    assert job["args"]["mode"] == "barrierless"
    assert trace["counters"] == {"map.tasks": 2}
    assert trace["displayTimeUnit"] == "ms"


def test_written_trace_is_valid_json_and_round_trips(tmp_path):
    tracer = make_tracer()
    path = write_chrome_trace(str(tmp_path / "sub" / "t.json"), tracer)
    with open(path, encoding="utf-8") as fh:
        loaded = json.load(fh)
    spans = spans_from_chrome_trace(loaded)
    assert validate_span_nesting(spans) == []
    by_name = {span.name: span for span in spans}
    assert by_name["map-1"].tid == 7
    assert by_name["map"].parent_id == by_name["job"].span_id


def test_validator_catches_broken_nesting():
    ok = [
        Span(0, None, "job", "job", 0.0, 10.0),
        Span(1, 0, "map", "stage", 0.0, 6.0),
    ]
    assert validate_span_nesting(ok) == []

    dangling = [Span(1, 99, "map", "stage", 0.0, 6.0)]
    assert any("dangling" in p for p in validate_span_nesting(dangling))

    inverted = [Span(0, None, "job", "job", 5.0, 1.0)]
    assert any("end precedes start" in p for p in validate_span_nesting(inverted))

    upside_down = [
        Span(0, None, "task", "task", 0.0, 10.0),
        Span(1, 0, "job", "job", 1.0, 2.0),
    ]
    assert any("cannot nest" in p for p in validate_span_nesting(upside_down))

    escaping = [
        Span(0, None, "job", "job", 0.0, 10.0),
        Span(1, 0, "map", "stage", 2.0, 11.0),
    ]
    assert any("ends after parent" in p for p in validate_span_nesting(escaping))


def test_render_counters_aligned_table():
    counters = CounterRegistry()
    counters.merge_dict({"map.tasks": 4, "reduce.tasks": 2})
    text = render_counters(counters, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "map.tasks" in lines[1] and "4" in lines[1]
    assert render_counters(CounterRegistry()).endswith("(none)")


def test_render_trace_summary_tree_and_folding():
    tracer = Tracer()
    job = tracer.record("job", "job", 0.0, 100.0)
    stage = tracer.record("map", "stage", 0.0, 90.0, parent=job)
    for index in range(12):
        tracer.record(f"map-{index}", "task", index, index + 1.0, parent=stage)
    text = render_trace_summary(tracer, max_children=8)
    assert text.splitlines()[0].startswith("job")
    assert "… and 4 more" in text
    assert render_trace_summary(Tracer()) == "(no spans recorded)"
