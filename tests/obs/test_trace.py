"""Unit tests for the span tracer."""

from __future__ import annotations

import threading

import pytest

from repro.obs import KIND_DEPTH, Tracer


class FakeClock:
    """A manually-advanced clock for deterministic span times."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 1.0) -> None:
        self.t += dt


def test_span_context_manager_records_interval():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("job", "job"):
        clock.tick(5.0)
    (span,) = tracer.spans()
    assert (span.name, span.kind, span.start, span.end) == ("job", "job", 0.0, 5.0)
    assert span.duration == 5.0


def test_nested_spans_get_implicit_parents():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("job", "job") as job:
        with tracer.span("map", "stage") as stage:
            with tracer.span("map-0", "task") as task:
                pass
    assert job.parent_id is None
    assert stage.parent_id == job.span_id
    assert task.parent_id == stage.span_id


def test_explicit_parent_beats_implicit():
    tracer = Tracer(clock=FakeClock())
    outer = tracer.open("job", "job")
    with tracer.span("other", "job"):
        child = tracer.open("map", "stage", parent=outer)
    assert child.parent_id == outer.span_id
    tracer.close(child)
    tracer.close(outer)


def test_open_close_supports_overlapping_intervals():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    a = tracer.open("map", "stage")
    clock.tick()
    b = tracer.open("reduce", "stage")
    clock.tick()
    tracer.close(a)
    clock.tick()
    tracer.close(b)
    spans = {span.name: span for span in tracer.spans()}
    assert spans["map"].start < spans["reduce"].start < spans["map"].end
    assert spans["reduce"].end > spans["map"].end


def test_record_with_explicit_times():
    tracer = Tracer()
    parent = tracer.record("job", "job", 0.0, 10.0)
    child = tracer.record("map", "stage", 1.0, 4.0, parent=parent)
    assert child.parent_id == parent.span_id
    assert [span.name for span in tracer.spans()] == ["job", "map"]


def test_record_rejects_negative_duration_and_bad_kind():
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.record("x", "job", 5.0, 1.0)
    with pytest.raises(ValueError):
        tracer.record("x", "banana", 0.0, 1.0)
    with pytest.raises(ValueError):
        tracer.open("x", "banana")


def test_disabled_tracer_yields_none_and_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("job", "job") as span:
        assert span is None
    assert tracer.open("x", "task") is None
    tracer.close(None)  # no-op by contract
    assert tracer.record("x", "task", 0.0, 1.0) is None
    assert len(tracer) == 0
    assert tracer.makespan() == 0.0


def test_thread_local_stacks_do_not_cross_threads():
    tracer = Tracer(clock=FakeClock())
    captured = {}

    def worker():
        # No span is open in *this* thread, so no implicit parent exists.
        span = tracer.open("task", "task")
        captured["parent"] = span.parent_id
        tracer.close(span)

    with tracer.span("job", "job"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert captured["parent"] is None


def test_spans_sorted_and_queryable():
    tracer = Tracer()
    job = tracer.record("job", "job", 0.0, 9.0)
    tracer.record("b", "task", 5.0, 6.0, parent=job)
    tracer.record("a", "task", 1.0, 2.0, parent=job)
    assert [span.name for span in tracer.spans()] == ["job", "a", "b"]
    assert [span.name for span in tracer.spans(kind="task")] == ["a", "b"]
    assert [span.name for span in tracer.children(job)] == ["a", "b"]
    assert [span.name for span in tracer.roots()] == ["job"]
    assert tracer.find("a")[0].start == 1.0
    assert tracer.makespan() == 9.0


def test_kind_depth_covers_full_hierarchy():
    assert (
        KIND_DEPTH["job"]
        < KIND_DEPTH["stage"]
        < KIND_DEPTH["task"]
        < KIND_DEPTH["attempt"]
        <= KIND_DEPTH["op"]
    )
