"""Preemption decision tests: policy choice, kernel park/requeue, props.

The decision layer (*who* vacates a slot) lives entirely in the
clock-free kernel + policy pair, so everything here runs on the
virtual-clock style of ``tests/server/harness.py``: no sleeps, no
sockets, no workers.  The execution layer (*how* a job parks) is
covered by ``tests/cluster/test_preempt.py``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.server.kernel import SchedulerKernel, TenantConfig
from repro.server.policy import (
    DeadlinePolicy,
    FairSharePolicy,
    FifoPolicy,
    Ticket,
)

if os.environ.get("CI"):
    settings.load_profile("ci")


def _ticket(job_id: str, tenant: str, seq: int, weight: float = 1.0) -> Ticket:
    return Ticket(job_id=job_id, tenant=tenant, seq=seq, weight=weight)


# -- policy decision ------------------------------------------------------


class TestFairSharePreemptDecision:
    def test_no_backlog_never_preempts(self):
        policy = FairSharePolicy()
        running = {"a": [_ticket("a1", "a", 1), _ticket("a2", "a", 2)]}
        assert policy.preempt({}, running, {"a": 1.0}, 2) is None

    def test_no_over_share_tenant_never_preempts(self):
        # Two tenants, two slots, one slot each: both exactly at share,
        # so a third backlogged tenant cannot evict anyone.
        policy = FairSharePolicy()
        running = {
            "a": [_ticket("a1", "a", 1)],
            "b": [_ticket("b1", "b", 2)],
        }
        backlog = {"c": [_ticket("c1", "c", 3)]}
        # shares: 2 slots / 3 active = 2/3 each → a and b (1 slot each)
        # are over share, so preemption does fire here; flip to a case
        # where occupancy == share exactly:
        running = {"a": [_ticket("a1", "a", 1)]}
        backlog = {"b": [_ticket("b1", "b", 2)]}
        # 2 active, 2 slots → share 1.0 each; a occupies exactly 1.0.
        assert policy.preempt(backlog, running, {}, 2) is None

    def test_victim_is_most_over_share_tenants_youngest(self):
        policy = FairSharePolicy()
        running = {
            "a": [_ticket("a1", "a", 1), _ticket("a2", "a", 5)],
            "b": [_ticket("b1", "b", 2)],
        }
        backlog = {"c": [_ticket("c1", "c", 9)]}
        victim = policy.preempt(backlog, running, {}, 3)
        # shares: 1 slot each; a occupies 2 (over), b occupies 1 (at).
        # Victim must be a's youngest running ticket (max seq).
        assert victim is not None
        assert victim.job_id == "a2"

    def test_starved_tenant_required(self):
        # Backlogged tenant already at its share → not starved → no-op.
        policy = FairSharePolicy()
        running = {
            "a": [_ticket("a1", "a", 1), _ticket("a2", "a", 2)],
            "b": [_ticket("b1", "b", 3), _ticket("b2", "b", 4)],
        }
        backlog = {"b": [_ticket("b3", "b", 5)]}
        # 2 active tenants, 4 slots → share 2.0 each; b occupies 2.
        assert policy.preempt(backlog, running, {}, 4) is None

    def test_weights_shift_the_share(self):
        policy = FairSharePolicy()
        running = {"a": [_ticket("a1", "a", 1), _ticket("a2", "a", 2)]}
        backlog = {"b": [_ticket("b1", "b", 3)]}
        weights = {"a": 3.0, "b": 1.0}
        # a's share = 2 * 3/4 = 1.5 < 2 occupied → still over, preempt.
        victim = policy.preempt(backlog, running, weights, 2)
        assert victim is not None and victim.job_id == "a2"
        # Heavier a: share = 2 * 9/10 = 1.8... still < 2.  Make it equal:
        weights = {"a": 1.0, "b": 0.0}
        # total 1.0 → a's share = 2 slots; occupancy 2 is not over.
        assert policy.preempt(backlog, running, weights, 2) is None

    def test_zero_total_weight_degenerates_to_equal_shares(self):
        policy = FairSharePolicy()
        running = {"a": [_ticket("a1", "a", 1), _ticket("a2", "a", 2)]}
        backlog = {"b": [_ticket("b1", "b", 3)]}
        victim = policy.preempt(backlog, running, {"a": 0.0, "b": 0.0}, 2)
        assert victim is not None and victim.tenant == "a"

    def test_tie_breaks_to_lexicographically_smallest(self):
        policy = FairSharePolicy()
        running = {
            "b": [_ticket("b1", "b", 1), _ticket("b2", "b", 2)],
            "a": [_ticket("a1", "a", 3), _ticket("a2", "a", 4)],
        }
        backlog = {"c": [_ticket("c1", "c", 5)]}
        victim = policy.preempt(backlog, running, {}, 4)
        assert victim is not None and victim.tenant == "a"

    @pytest.mark.parametrize("policy", [FifoPolicy(), DeadlinePolicy()])
    def test_fifo_and_deadline_never_preempt(self, policy):
        running = {"a": [_ticket("a1", "a", 1), _ticket("a2", "a", 2)]}
        backlog = {"b": [_ticket("b1", "b", 3)]}
        assert policy.preempt(backlog, running, {}, 2) is None


# -- kernel park / requeue ------------------------------------------------


class TestKernelPreempt:
    def test_full_loop_park_requeue_converge(self):
        kernel = SchedulerKernel(
            slots=2, policy="fair",
            tenants={"a": TenantConfig(), "b": TenantConfig()},
        )
        kernel.submit("a", "a1", input_bytes=10)
        kernel.submit("a", "a2", input_bytes=20)
        assert [t.job_id for t in kernel.next_grants()] == ["a1", "a2"]
        kernel.submit("a", "a3", input_bytes=5)
        kernel.submit("b", "b1", input_bytes=30)
        picked = kernel.next_preemptions()
        assert [t.job_id for t in picked] == ["a2"]  # a's youngest
        # Idempotent while pending: the same job is never picked twice.
        assert kernel.next_preemptions() == []
        assert kernel.snapshot()["preempting"] == 1
        live_before = kernel.live_bytes
        queued_before = kernel.queued_bytes
        assert kernel.confirm_preempt("a2") is True
        # Accounting conserved: a2's 20 bytes moved live -> queued.
        assert kernel.live_bytes == live_before - 20
        assert kernel.queued_bytes == queued_before + 20
        assert kernel.snapshot()["preempting"] == 0
        assert kernel.snapshot()["preempted"] == 1
        # The entitlement ledger is deliberately untouched by the park,
        # so the first post-park grant round ties a vs b and the
        # tie-break regrants the victim — proving the parked ticket
        # sits at the *head* of a's queue, ahead of the older-queued a3.
        assert [t.job_id for t in kernel.next_grants()] == ["a2"]
        # The regrant charged a's ledger, so the next preempt+park
        # round converges: the slot lands on the starved tenant.
        assert [t.job_id for t in kernel.next_preemptions()] == ["a2"]
        assert kernel.confirm_preempt("a2") is True
        assert [t.job_id for t in kernel.next_grants()] == ["b1"]
        # a's next slot still resumes a2 before touching a3.
        kernel.release("a1")
        assert [t.job_id for t in kernel.next_grants()] == ["a2"]

    def test_finish_wins_the_race_with_preempt(self):
        kernel = SchedulerKernel(slots=1, policy="fair")
        kernel.submit("a", "a1")
        kernel.next_grants()
        kernel.submit("b", "b1")
        assert [t.job_id for t in kernel.next_preemptions()] == ["a1"]
        # The job finishes before the checkpoint-park lands.
        assert kernel.release("a1") is True
        assert kernel.confirm_preempt("a1") is False
        assert kernel.snapshot()["preempting"] == 0
        assert [t.job_id for t in kernel.next_grants()] == ["b1"]

    def test_confirm_unknown_job_is_noop(self):
        kernel = SchedulerKernel(slots=1, policy="fair")
        assert kernel.confirm_preempt("ghost") is False

    def test_pending_preemptions_bounded_by_backlog(self):
        # One backlogged ticket can free at most one slot, even when
        # several tenants sit over share.
        kernel = SchedulerKernel(slots=4, policy="fair")
        for index in range(4):
            kernel.submit("a", f"a{index}")
        kernel.next_grants()
        kernel.submit("b", "b1")
        assert len(kernel.next_preemptions()) == 1
        assert kernel.next_preemptions() == []

    def test_fifo_kernel_never_preempts(self):
        kernel = SchedulerKernel(slots=1, policy="fifo")
        kernel.submit("a", "a1")
        kernel.next_grants()
        kernel.submit("b", "b1")
        assert kernel.next_preemptions() == []

    def test_pool_not_full_never_preempts(self):
        kernel = SchedulerKernel(slots=4, policy="fair")
        kernel.submit("a", "a1")
        kernel.submit("a", "a2")
        kernel.next_grants()
        kernel.submit("b", "b1")
        # Two free slots: grants fix the imbalance, not preemptions.
        assert kernel.next_preemptions() == []


# -- hypothesis properties ------------------------------------------------


class _CheckedFairShare(FairSharePolicy):
    """Fair share that asserts every victim sits strictly over share."""

    def preempt(self, backlog, running, weights, slots):
        victim = super().preempt(backlog, running, weights, slots)
        if victim is not None:
            active = sorted(
                {t for t, q in running.items() if q}
                | {t for t, q in backlog.items() if q}
            )
            raw = {t: max(0.0, weights.get(t, 1.0)) for t in active}
            total = sum(raw.values())
            share = (
                slots / len(active)
                if total <= 0.0
                else slots * raw[victim.tenant] / total
            )
            occupancy = len(running.get(victim.tenant, ()))
            assert occupancy > share + 1e-9, (
                f"preempted tenant {victim.tenant} at/below entitlement: "
                f"occupancy {occupancy} <= share {share}"
            )
        return victim


_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=100),
        ),
        st.tuples(st.just("grant")),
        st.tuples(st.just("storm")),
        st.tuples(st.just("release"), st.integers(min_value=0, max_value=7)),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=_ops,
    slots=st.integers(min_value=1, max_value=4),
    weights=st.tuples(
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.0, max_value=8.0),
    ),
)
def test_preemption_storm_invariants(ops, slots, weights):
    """Random submit/grant/preempt/release storms hold the invariants:

    - grants never exceed slots, even mid-preemption-storm;
    - no tenant at/below its occupancy entitlement is ever preempted
      (the checking policy asserts at decision time);
    - preempt→confirm conserves slot and byte accounting: queued and
      live bytes always equal the sum over outstanding tickets.
    """
    kernel = SchedulerKernel(
        slots=slots,
        policy=_CheckedFairShare(),
        tenants={
            "a": TenantConfig(weight=weights[0]),
            "b": TenantConfig(weight=weights[1]),
            "c": TenantConfig(weight=weights[2]),
        },
    )
    outstanding: dict[str, int] = {}  # job_id -> input_bytes, not released
    seq = 0
    for op in ops:
        if op[0] == "submit":
            _kind, tenant, size = op
            seq += 1
            kernel.submit(tenant, f"{tenant}-{seq}", input_bytes=size)
            outstanding[f"{tenant}-{seq}"] = size
        elif op[0] == "grant":
            kernel.next_grants()
        elif op[0] == "storm":
            for ticket in kernel.next_preemptions():
                assert kernel.confirm_preempt(ticket.job_id) is True
        else:
            running = kernel.running_ids()
            if running:
                victim = running[op[1] % len(running)]
                kernel.release(victim)
                outstanding.pop(victim, None)
        snapshot = kernel.snapshot()
        assert snapshot["running"] <= slots
        assert len(kernel.running_ids()) <= slots
        assert kernel.queued_bytes + kernel.live_bytes == sum(
            outstanding.values()
        )
        assert kernel.queued_bytes >= 0 and kernel.live_bytes >= 0
    # Drain: everything still outstanding must eventually run — parked
    # tickets kept their place and are re-grantable.
    for _ in range(len(outstanding) + slots + 1):
        if not kernel.backlog_sizes():
            break
        for job_id in kernel.running_ids():
            kernel.release(job_id)
            outstanding.pop(job_id, None)
        kernel.next_grants()
    for job_id in kernel.running_ids():
        kernel.release(job_id)
        outstanding.pop(job_id, None)
    assert not kernel.backlog_sizes()
    assert kernel.queued_bytes == 0 and kernel.live_bytes == 0
