"""Scheduler kernel + policy semantics on the virtual clock.

Every test here runs the production :class:`SchedulerKernel` through
``tests/server/harness.py`` — scripted arrivals, tick counter, zero
wall-clock sleeps — so each assertion is about scheduling decisions,
not thread timing.
"""

from __future__ import annotations

import pytest

from repro.server.kernel import (
    AdmissionConfig,
    BackpressureError,
    SchedulerKernel,
    TenantConfig,
)
from repro.server.policy import FairSharePolicy, make_policy

from tests.server.harness import (
    Arrival,
    assert_fair_entitlement,
    assert_no_starvation,
    run_trace,
)


def make_kernel(*, slots=1, policy="fair", weights=None, admission=None):
    tenants = {
        name: TenantConfig(weight=weight)
        for name, weight in (weights or {}).items()
    }
    return SchedulerKernel(
        slots=slots, policy=policy, tenants=tenants, admission=admission
    )


class TestFairShare:
    def test_equal_weights_alternate(self):
        kernel = make_kernel(weights={"a": 1.0, "b": 1.0})
        result = run_trace(
            kernel, [Arrival(0, "a", jobs=6), Arrival(0, "b", jobs=6)]
        )
        tenants = [g.tenant for g in result.grants]
        # Strict alternation while both stay backlogged: any two
        # consecutive grants serve both tenants.
        for first, second in zip(tenants, tenants[1:-1]):
            assert {first, second} == {"a", "b"}

    def test_weighted_split_tracks_weights(self):
        kernel = make_kernel(weights={"heavy": 3.0, "light": 1.0})
        result = run_trace(
            kernel,
            [Arrival(0, "heavy", jobs=40), Arrival(0, "light", jobs=40)],
        )
        counts = result.grants_by_tenant()
        # While both are backlogged (first 53 grants: light runs out of
        # entitlement slower than heavy runs out of jobs), heavy should
        # take ~3/4 of the slots.
        window = [g.tenant for g in result.grants[:40]]
        heavy_share = window.count("heavy") / len(window)
        assert 0.70 <= heavy_share <= 0.80, (window, counts)
        assert_fair_entitlement(result)

    def test_fairness_bound_on_mixed_trace(self):
        kernel = make_kernel(
            slots=2, weights={"a": 2.0, "b": 1.0, "c": 1.0}
        )
        arrivals = [
            Arrival(0, "a", jobs=10, duration=2),
            Arrival(0, "b", jobs=10),
            Arrival(3, "c", jobs=8, duration=3),
            Arrival(7, "a", jobs=4),
        ]
        result = run_trace(kernel, arrivals)
        assert_fair_entitlement(result)
        assert_no_starvation(result)
        assert len(result.grants) == len(result.submitted)

    def test_single_job_among_flood_is_served_promptly(self):
        # The starvation scenario from the issue: one job from a light
        # tenant arrives while a heavy tenant floods the queue.  With
        # weights 1:1 the light job must be granted within 2 grants of
        # becoming backlogged, flood or no flood.
        kernel = make_kernel(weights={"flood": 1.0, "meek": 1.0})
        result = run_trace(
            kernel,
            [Arrival(0, "flood", jobs=50), Arrival(5, "meek", jobs=1)],
        )
        meek_rank = next(
            i
            for i, g in enumerate(result.grants)
            if g.tenant == "meek"
        )
        flood_before_meek_backlogged = sum(
            1
            for g in result.grants[:meek_rank]
            if "meek" in g.backlogged
        )
        assert flood_before_meek_backlogged <= 1
        assert_no_starvation(result)

    def test_idle_tenant_banks_nothing(self):
        # Tenant b sits idle for the first half of the trace; when it
        # shows up it gets its *forward* share, not a retroactive one.
        kernel = make_kernel(weights={"a": 1.0, "b": 1.0})
        result = run_trace(
            kernel,
            [Arrival(0, "a", jobs=20), Arrival(10, "b", jobs=4)],
        )
        assert_fair_entitlement(result)
        # b's four jobs interleave with a's remaining ones rather than
        # pre-empting all of them at once.
        post = [g.tenant for g in result.grants if g.tick >= 10][:8]
        assert post.count("b") <= 5

    def test_deficits_conserve(self):
        policy = FairSharePolicy()
        kernel = SchedulerKernel(
            slots=1,
            policy=policy,
            tenants={
                "a": TenantConfig(weight=2.0),
                "b": TenantConfig(weight=1.0),
            },
        )
        run_trace(kernel, [Arrival(0, "a", jobs=9), Arrival(2, "b", jobs=5)])
        assert sum(policy.deficits.values()) == pytest.approx(0.0, abs=1e-6)


class TestFifoAndDeadline:
    def test_fifo_is_arrival_ordered(self):
        kernel = make_kernel(policy="fifo")
        result = run_trace(
            kernel,
            [Arrival(0, "a", jobs=3), Arrival(0, "b", jobs=3)],
        )
        # Submission interleaving within a tick follows the scripted
        # order: all of a's jobs were admitted before b's.
        assert [g.tenant for g in result.grants] == ["a"] * 3 + ["b"] * 3

    def test_fifo_can_starve_where_fair_cannot(self):
        # The motivating contrast: a flood ahead of you in a FIFO queue
        # delays you by the whole flood; fair share bounds the wait.
        arrivals = [Arrival(0, "flood", jobs=20), Arrival(1, "meek", jobs=1)]
        fifo = run_trace(make_kernel(policy="fifo"), arrivals)
        fair = run_trace(make_kernel(policy="fair"), arrivals)

        def meek_rank(result):
            return next(
                i for i, g in enumerate(result.grants) if g.tenant == "meek"
            )

        assert meek_rank(fifo) == 20
        assert meek_rank(fair) <= 3

    def test_deadline_policy_is_edf(self):
        kernel = make_kernel(policy="deadline", slots=1)
        result = run_trace(
            kernel,
            [
                Arrival(0, "late", jobs=2, deadline=100.0),
                Arrival(0, "soon", jobs=2, deadline=5.0),
                Arrival(0, "never", jobs=1),  # no deadline: runs last
            ],
        )
        assert [g.tenant for g in result.grants] == [
            "soon", "soon", "late", "late", "never",
        ]

    def test_deadline_policy_scans_past_queue_heads(self):
        # EDF over *every* queued ticket: a tight deadline queued
        # behind a deadline-less head of the same tenant still wins.
        kernel = make_kernel(policy="deadline", slots=1)
        kernel.submit("t", "headless")
        kernel.submit("t", "tight", deadline=1.0)
        kernel.submit("u", "loose", deadline=50.0)
        assert [t.job_id for t in kernel.next_grants()] == ["tight"]
        kernel.release("tight")
        assert [t.job_id for t in kernel.next_grants()] == ["loose"]
        kernel.release("loose")
        assert [t.job_id for t in kernel.next_grants()] == ["headless"]


class TestSlotPool:
    def test_pool_never_overruns(self):
        kernel = make_kernel(slots=3, weights={"a": 1.0, "b": 1.0})
        result = run_trace(
            kernel,
            [
                Arrival(0, "a", jobs=10, duration=4),
                Arrival(0, "b", jobs=10, duration=2),
            ],
        )
        assert result.peak_running == 3  # saturated, never exceeded

    def test_release_is_idempotent(self):
        kernel = make_kernel()
        kernel.submit("a", "j1")
        kernel.next_grants()
        assert kernel.release("j1") is True
        assert kernel.release("j1") is False
        assert kernel.release("ghost") is False


class TestAdmission:
    def test_queued_bytes_high_water_mark_sheds_then_recovers(self):
        kernel = make_kernel(
            admission=AdmissionConfig(
                max_queued_bytes=1000, retry_after_s=0.25
            )
        )
        kernel.submit("a", "j1", input_bytes=600)
        with pytest.raises(BackpressureError) as info:
            kernel.submit("a", "j2", input_bytes=600)
        assert info.value.retry_after_s == 0.25
        assert "high-water mark" in info.value.reason
        # Recovery: granting j1 moves its bytes from queued to live.
        kernel.next_grants()
        assert kernel.queued_bytes == 0
        kernel.submit("a", "j2", input_bytes=600)  # admitted now
        assert kernel.queued_bytes == 600

    def test_tenant_quota_is_per_tenant(self):
        kernel = SchedulerKernel(
            slots=1,
            tenants={"a": TenantConfig(max_queued_jobs=2)},
        )
        kernel.submit("a", "a1")
        # one grant frees queue space: quota is on *queued*, not total
        kernel.next_grants()
        kernel.submit("a", "a2")
        kernel.submit("a", "a3")
        with pytest.raises(BackpressureError, match="tenant a queue full"):
            kernel.submit("a", "a4")
        kernel.submit("b", "b1")  # other tenants unaffected

    def test_global_queue_ceiling(self):
        kernel = make_kernel(
            admission=AdmissionConfig(max_queued_jobs=3)
        )
        for index in range(3):
            kernel.submit("t", f"j{index}")
        with pytest.raises(BackpressureError, match="server queue full"):
            kernel.submit("u", "j3")

    def test_live_bytes_gate(self):
        kernel = make_kernel(
            slots=2, admission=AdmissionConfig(max_live_bytes=500)
        )
        kernel.submit("a", "big", input_bytes=800)
        kernel.next_grants()
        assert kernel.live_bytes == 800
        with pytest.raises(BackpressureError, match="live bytes"):
            kernel.submit("a", "next", input_bytes=10)
        kernel.release("big")
        kernel.submit("a", "next", input_bytes=10)

    def test_live_bytes_mark_defers_grants(self):
        kernel = make_kernel(
            slots=2, admission=AdmissionConfig(max_live_bytes=500)
        )
        kernel.submit("a", "j1", input_bytes=600)
        kernel.submit("a", "j2", input_bytes=10)
        # j1 is granted alone (an oversized first ticket never wedges
        # the pool); the free second slot stays empty while live bytes
        # sit above the mark.
        assert [t.job_id for t in kernel.next_grants()] == ["j1"]
        assert kernel.next_grants() == []
        kernel.release("j1")
        assert [t.job_id for t in kernel.next_grants()] == ["j2"]


class TestCancel:
    def test_cancel_queued_then_idempotent(self):
        kernel = make_kernel()
        kernel.submit("a", "j1", input_bytes=123)
        assert kernel.cancel("j1") == "cancelled"
        assert kernel.cancel("j1") == "already-cancelled"
        assert kernel.queued_bytes == 0
        assert kernel.next_grants() == []

    def test_cancel_running_reports_too_late(self):
        kernel = make_kernel()
        kernel.submit("a", "j1")
        kernel.next_grants()
        assert kernel.cancel("j1") == "running"

    def test_cancel_unknown(self):
        assert make_kernel().cancel("nope") == "unknown"


def test_make_policy_rejects_unknown():
    with pytest.raises(ValueError, match="unknown policy"):
        make_policy("lottery")
