"""Virtual-clock scheduler test bed — drives the real kernel, no sleeps.

The production :class:`~repro.server.kernel.SchedulerKernel` is
clock-free by design: it never reads time, only orders by opaque
deadline values.  That makes it drivable by a *virtual* clock — a bare
tick counter — so scheduling behaviour over minutes of simulated
arrivals is asserted in milliseconds of wall time, deterministically.
This module is that driver plus the invariant calculators the kernel
suites and the hypothesis properties share.

One tick of :func:`run_trace`:

1. jobs whose virtual duration has elapsed release their slots;
2. this tick's scripted :class:`Arrival`\\ s are submitted (admission
   rejections are recorded, not raised);
3. the kernel grants free slots; each grant is logged together with
   the set of tenants that were backlogged at that instant.

Per-grant backlog snapshots are what make the fairness math exact: the
harness accrues each tenant's *entitlement* independently of the
policy — on every grant, each then-backlogged tenant earns
``weight/total_backlogged_weight`` of a slot — and
:func:`assert_fair_entitlement` then demands every tenant's granted
count stays within ±1 of that entitlement at every point in the trace.
A policy that starves a nonempty queue, or over-serves a heavy tenant,
fails the bound; FIFO demonstrably does, fair share must not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.server.kernel import BackpressureError, SchedulerKernel

__all__ = [
    "Arrival",
    "GrantEvent",
    "TraceResult",
    "accrue_entitlements",
    "assert_fair_entitlement",
    "assert_no_starvation",
    "run_trace",
]


@dataclass
class Arrival:
    """Scripted submissions: ``jobs`` jobs from ``tenant`` at ``tick``."""

    tick: int
    tenant: str
    jobs: int = 1
    input_bytes: int = 0
    duration: int = 1
    deadline: float | None = None


@dataclass
class GrantEvent:
    """One slot grant and the scheduling context it was decided in."""

    tick: int
    job_id: str
    tenant: str
    #: Tenants with at least one queued ticket when this grant was
    #: decided (the granted ticket still queued, so its tenant is in).
    backlogged: tuple[str, ...]
    weights: dict[str, float]


@dataclass
class TraceResult:
    grants: list[GrantEvent] = field(default_factory=list)
    rejections: list[tuple[int, str, BackpressureError]] = field(
        default_factory=list
    )
    submitted: list[str] = field(default_factory=list)
    #: max observed concurrent running jobs (must never exceed slots).
    peak_running: int = 0

    def grants_by_tenant(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for grant in self.grants:
            counts[grant.tenant] = counts.get(grant.tenant, 0) + 1
        return counts


def run_trace(
    kernel: SchedulerKernel,
    arrivals: list[Arrival],
    *,
    ticks: int | None = None,
    drain: bool = True,
) -> TraceResult:
    """Drive the kernel through a scripted trace on a virtual clock.

    With ``drain`` the clock keeps ticking past the last scripted
    arrival until every admitted job has run (bounded, since nothing
    new arrives).  Job ids are synthesised as ``t<tick>-<tenant>-<n>``
    so failures read naturally.
    """
    by_tick: dict[int, list[Arrival]] = {}
    for arrival in arrivals:
        by_tick.setdefault(arrival.tick, []).append(arrival)
    last_tick = max(by_tick, default=0) if ticks is None else ticks
    result = TraceResult()
    finish_at: dict[int, list[str]] = {}
    durations: dict[str, int] = {}
    seq = 0
    tick = 0
    while True:
        for job_id in finish_at.pop(tick, []):
            kernel.release(job_id)
        for arrival in by_tick.get(tick, []):
            for _ in range(arrival.jobs):
                seq += 1
                job_id = f"t{tick}-{arrival.tenant}-{seq}"
                try:
                    kernel.submit(
                        arrival.tenant,
                        job_id,
                        input_bytes=arrival.input_bytes,
                        deadline=arrival.deadline,
                    )
                except BackpressureError as exc:
                    result.rejections.append((tick, arrival.tenant, exc))
                    continue
                result.submitted.append(job_id)
                durations[job_id] = max(1, arrival.duration)
        # Reconstruct the per-grant backlog: next_grants() only removes
        # tickets, and nothing arrives mid-call, so the backlog before
        # grant k is this snapshot minus the k tickets granted first.
        backlog = kernel.backlog_sizes()
        granted = kernel.next_grants()
        for ticket in granted:
            backlogged = tuple(sorted(t for t, n in backlog.items() if n > 0))
            result.grants.append(
                GrantEvent(
                    tick=tick,
                    job_id=ticket.job_id,
                    tenant=ticket.tenant,
                    backlogged=backlogged,
                    weights=kernel.weights(),
                )
            )
            backlog[ticket.tenant] = backlog.get(ticket.tenant, 0) - 1
            finish_at.setdefault(
                tick + durations.get(ticket.job_id, 1), []
            ).append(ticket.job_id)
        running = len(kernel.running_ids())
        assert running <= kernel.slots, (
            f"pool overrun at tick {tick}: {running} > {kernel.slots}"
        )
        result.peak_running = max(result.peak_running, running)
        tick += 1
        if tick > last_tick and (not drain or not finish_at and not kernel.backlog_sizes()):
            break
        if tick > last_tick + 100_000:
            raise AssertionError("virtual trace failed to drain")
    return result


def accrue_entitlements(
    grants: list[GrantEvent],
) -> list[tuple[GrantEvent, dict[str, float], dict[str, int]]]:
    """Fold the grant log into (event, entitlement, granted) steps.

    Entitlement is computed here, independently of any policy's
    internal ledger: each grant distributes exactly one slot of
    entitlement across the tenants backlogged at that grant, weighted.
    """
    entitlement: dict[str, float] = {}
    granted: dict[str, int] = {}
    steps = []
    for event in grants:
        weights = {
            t: max(0.0, event.weights.get(t, 1.0)) for t in event.backlogged
        }
        total = sum(weights.values())
        for tenant in event.backlogged:
            share = (
                weights[tenant] / total
                if total > 0
                else 1.0 / len(event.backlogged)
            )
            entitlement[tenant] = entitlement.get(tenant, 0.0) + share
        granted[event.tenant] = granted.get(event.tenant, 0) + 1
        steps.append((event, dict(entitlement), dict(granted)))
    return steps


def assert_fair_entitlement(
    result: TraceResult, *, tolerance: float = 1.0 + 1e-9
) -> None:
    """Every tenant stays within ±tolerance grants of its entitlement.

    Checked after *every* grant, not just at trace end — a scheduler
    that oscillates (starve, then binge) fails even if the totals
    balance out.
    """
    for event, entitlement, granted in accrue_entitlements(result.grants):
        for tenant in set(entitlement) | set(granted):
            gap = granted.get(tenant, 0) - entitlement.get(tenant, 0.0)
            assert abs(gap) <= tolerance, (
                f"tenant {tenant} is {gap:+.3f} grants from its "
                f"entitlement after grant of {event.job_id} "
                f"(tick {event.tick})"
            )


def assert_no_starvation(result: TraceResult) -> None:
    """No tenant accrues ≥2 slots of entitlement without a grant.

    The direct starvation reading of the ±1 bound: while a tenant
    stays backlogged its entitlement keeps growing, so a scheduler
    can leave at most two slots' worth of accrual between consecutive
    grants to it before the deficit arithmetic forces service.
    """
    owed: dict[str, float] = {}
    for event, _entitlement, _granted in accrue_entitlements(result.grants):
        weights = {
            t: max(0.0, event.weights.get(t, 1.0)) for t in event.backlogged
        }
        total = sum(weights.values())
        for tenant in event.backlogged:
            share = (
                weights[tenant] / total
                if total > 0
                else 1.0 / len(event.backlogged)
            )
            owed[tenant] = owed.get(tenant, 0.0) + share
        owed[event.tenant] = 0.0
        for tenant, debt in owed.items():
            assert debt < 2.0 + 1e-9, (
                f"tenant {tenant} accrued {debt:.3f} slots of entitlement "
                f"without a grant (starved at tick {event.tick})"
            )
