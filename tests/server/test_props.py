"""Property-based scheduler invariants (satellite: hypothesis suite).

Random arrival traces, tenant weights, pool sizes and durations, all
driven through the virtual-clock harness.  Four invariants, straight
from the issue:

1. fair share never starves a nonempty tenant queue;
2. granted slots never exceed the pool;
3. cancel is idempotent;
4. the fair-share policy's deficit counters conserve (sum to zero)
   across every grant.

Example counts are bounded so the suite stays inside the CI smoke
budget; the ``ci`` profile (tests/conftest.py) derandomizes them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.kernel import (
    AdmissionConfig,
    BackpressureError,
    SchedulerKernel,
    TenantConfig,
)
from repro.server.policy import FairSharePolicy

from tests.server.harness import (
    Arrival,
    assert_fair_entitlement,
    assert_no_starvation,
    run_trace,
)

TENANTS = ("a", "b", "c", "d")

arrival_lists = st.lists(
    st.builds(
        Arrival,
        tick=st.integers(min_value=0, max_value=30),
        tenant=st.sampled_from(TENANTS),
        jobs=st.integers(min_value=1, max_value=5),
        input_bytes=st.integers(min_value=0, max_value=4096),
        duration=st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=12,
)

weight_maps = st.fixed_dictionaries(
    {tenant: st.floats(min_value=0.25, max_value=8.0) for tenant in TENANTS}
)

slot_counts = st.integers(min_value=1, max_value=4)


def fair_kernel(weights, slots, policy=None):
    return SchedulerKernel(
        slots=slots,
        policy=policy if policy is not None else "fair",
        tenants={
            name: TenantConfig(weight=weight)
            for name, weight in weights.items()
        },
    )


@settings(max_examples=60, deadline=None)
@given(arrivals=arrival_lists, weights=weight_maps, slots=slot_counts)
def test_fair_share_never_starves_and_stays_within_one_grant(
    arrivals, weights, slots
):
    result = run_trace(fair_kernel(weights, slots), arrivals)
    assert len(result.grants) == len(result.submitted)
    assert_fair_entitlement(result)
    assert_no_starvation(result)


@settings(max_examples=60, deadline=None)
@given(arrivals=arrival_lists, weights=weight_maps, slots=slot_counts)
def test_granted_slots_never_exceed_pool(arrivals, weights, slots):
    result = run_trace(fair_kernel(weights, slots), arrivals)
    # The harness asserts the bound at every tick; double-check the
    # peak it recorded, and that the pool actually got used.
    assert result.peak_running <= slots
    if result.submitted:
        assert result.peak_running >= 1


@settings(max_examples=60, deadline=None)
@given(arrivals=arrival_lists, weights=weight_maps)
def test_deficit_counters_conserve_across_grants(arrivals, weights):
    policy = FairSharePolicy()
    kernel = fair_kernel(weights, slots=2, policy=policy)
    # Check conservation mid-trace, not just at the end: run the trace
    # tick-by-tick via the harness and assert after it returns, then
    # re-drive a second burst to catch ledger corruption carrying over.
    run_trace(kernel, arrivals)
    assert sum(policy.deficits.values()) == pytest.approx(0.0, abs=1e-6)
    run_trace(kernel, [Arrival(0, "a", jobs=3), Arrival(0, "d", jobs=3)])
    assert sum(policy.deficits.values()) == pytest.approx(0.0, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    arrivals=arrival_lists,
    weights=weight_maps,
    cancel_index=st.integers(min_value=0, max_value=30),
)
def test_cancel_is_idempotent_and_conserves_queued_bytes(
    arrivals, weights, cancel_index
):
    kernel = fair_kernel(weights, slots=1)
    admitted: list[str] = []
    seq = 0
    for arrival in arrivals:
        for _ in range(arrival.jobs):
            seq += 1
            job_id = f"j{seq}"
            try:
                kernel.submit(
                    arrival.tenant, job_id, input_bytes=arrival.input_bytes
                )
            except BackpressureError:
                continue
            admitted.append(job_id)
    if not admitted:
        return
    victim = admitted[cancel_index % len(admitted)]
    before = kernel.queued_bytes
    first = kernel.cancel(victim)
    after = kernel.queued_bytes
    assert first == "cancelled"
    assert after <= before
    # Idempotence: a repeat changes nothing.
    assert kernel.cancel(victim) == "already-cancelled"
    assert kernel.queued_bytes == after
    # The cancelled job is never granted.
    grants = kernel.next_grants()
    assert victim not in [ticket.job_id for ticket in grants]


@settings(max_examples=40, deadline=None)
@given(
    arrivals=arrival_lists,
    max_bytes=st.integers(min_value=1, max_value=8192),
)
def test_admission_never_exceeds_queued_bytes_mark(arrivals, max_bytes):
    kernel = SchedulerKernel(
        slots=1,
        policy="fair",
        admission=AdmissionConfig(max_queued_bytes=max_bytes),
    )
    result = run_trace(kernel, arrivals, drain=False, ticks=40)
    # Whatever was shed, the mark held: the kernel's queued-bytes gauge
    # never exceeds the configured high-water mark after any tick.
    assert kernel.queued_bytes <= max_bytes
    for _tick, _tenant, exc in result.rejections:
        assert isinstance(exc, BackpressureError)
        assert exc.retry_after_s > 0
