"""Differential: the 7-app batch, serial vs concurrent-through-server.

The same seven submissions run (a) serially through a lone
:class:`ThreadedEngine` and (b) concurrently through a
:class:`JobServer` — under fair share *and* FIFO — and every per-job
output must be byte-identical (normalised-output digests equal).
Concurrency and scheduling order must be invisible in the data plane;
only timing may differ.
"""

from __future__ import annotations

import pytest

from repro.apps.demo import APP_CHOICES, demo_job_and_input, normalized_output
from repro.core.types import ExecutionMode
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability
from repro.server import JobServer, output_digest

RECORDS = 150
SEEDS = {app: 11 + index for index, app in enumerate(APP_CHOICES)}


@pytest.fixture(scope="module")
def serial_digests() -> dict[str, str]:
    digests = {}
    for app in APP_CHOICES:
        job, pairs = demo_job_and_input(
            app,
            ExecutionMode.BARRIERLESS,
            records=RECORDS,
            num_reducers=2,
            num_maps=2,
            seed=SEEDS[app],
        )
        result = ThreadedEngine(obs=JobObservability()).run(job, pairs, 2)
        digests[app] = output_digest(app, result)
    return digests


@pytest.mark.parametrize("policy", ["fair", "fifo"])
def test_seven_app_batch_concurrent_equals_serial(policy, serial_digests):
    # Two tenants split the batch so the fair-share path actually
    # interleaves grants; slots=3 forces genuine concurrency.
    with JobServer(
        slots=3,
        policy=policy,
        tenants={"even": 1.0, "odd": 2.0},
    ) as server:
        ids = {}
        for index, app in enumerate(APP_CHOICES):
            tenant = "even" if index % 2 == 0 else "odd"
            ids[app] = server.submit(
                tenant,
                app,
                records=RECORDS,
                num_maps=2,
                num_reducers=2,
                seed=SEEDS[app],
            )
        for app, job_id in ids.items():
            record = server.wait(job_id, timeout=120.0)
            assert record.state == "done", (app, record.error)
            assert record.digest == serial_digests[app], (
                f"{app} diverged under {policy} concurrency"
            )
        status = server.status()
        assert status["server"]["counters"]["server.jobs.completed"] == len(
            APP_CHOICES
        )
