"""Server soak (satellite): 300 jobs, 4 tenants, cluster backend.

The ROADMAP item this PR closes asks for exactly this: a long-running
scheduler process draining hundreds of queued jobs over a real worker
cluster with *flat* resource usage.  Descriptor counts are taken with
:func:`tests.fdutil.open_fd_count` on the server/coordinator process
and every forked worker; resident memory is read from
``/proc/self/status`` (no psutil in the image) and must stay bounded.

``REPRO_SERVER_SOAK_JOBS`` scales the job count down for the CI
mini-soak (the ``server-smoke`` job runs 80 under a hard timeout);
the default is the full 300.
"""

from __future__ import annotations

import os
import time

from repro.server import AdmissionConfig, BackpressureError, JobServer
from tests.fdutil import open_fd_count

JOBS = int(os.environ.get("REPRO_SERVER_SOAK_JOBS", "300"))
TENANTS = {"t0": 4.0, "t1": 2.0, "t2": 1.0, "t3": 1.0}
WARMUP = 8

#: Tiny jobs: the soak measures hygiene under churn, not throughput.
RECORDS = 40

#: Generous RSS ceiling — the point is "bounded", i.e. not O(jobs):
#: 300 drained jobs retaining input or output would blow through this.
MAX_RSS_GROWTH_KB = 200_000


def _rss_kb() -> int:
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise AssertionError("no VmRSS in /proc/self/status")


def _settled_counts(pids, limits, deadline_s: float):
    deadline = time.monotonic() + deadline_s
    while True:
        counts = {pid: open_fd_count(pid) for pid in pids}
        if all(counts[pid] <= limits[pid] for pid in pids):
            return counts
        if time.monotonic() >= deadline:
            return counts
        time.sleep(0.05)


def test_soak_300_jobs_four_tenants_zero_fd_growth():
    tenants = list(TENANTS)
    with JobServer(
        "cluster",
        workers=2,
        slots=3,
        tenants=TENANTS,
        job_deadline_s=120.0,
    ) as server:
        # Warm up every code path (engine pools, telemetry buffers,
        # lazily-created sockets) before taking baselines.
        warmup_ids = [
            server.submit(tenants[i % 4], "wc", records=RECORDS, seed=i)
            for i in range(WARMUP)
        ]
        digests = set()
        for job_id in warmup_ids:
            record = server.wait(job_id, timeout=120.0)
            assert record.state == "done", record.error
            digests.add(record.digest)
        assert len(digests) <= WARMUP  # same seeds later must re-digest
        pids = [None, *server._runtime.worker_pids]
        fd_baseline = {pid: open_fd_count(pid) for pid in pids}
        limits = {pid: count + 4 for pid, count in fd_baseline.items()}
        rss_baseline = _rss_kb()

        # Queue everything up front — the scheduler, not the submitter,
        # paces execution — then drain.
        ids = {}
        for index in range(JOBS - WARMUP):
            tenant = tenants[index % 4]
            ids[server.submit(
                tenant, "wc", records=RECORDS, seed=index % 5
            )] = index % 5
        for job_id, seed in ids.items():
            record = server.wait(job_id, timeout=300.0)
            assert record.state == "done", (job_id, record.error)

        # Determinism under churn: equal seeds ⇒ equal digests.
        by_seed: dict[int, set] = {}
        for job_id, seed in ids.items():
            by_seed.setdefault(seed, set()).add(
                server._record(job_id).digest
            )
        for seed, seed_digests in by_seed.items():
            assert len(seed_digests) == 1, f"seed {seed}: {seed_digests}"

        status = server.status()
        assert status["server"]["queued"] == 0
        assert status["server"]["running"] == 0
        completed = status["server"]["counters"]["server.jobs.completed"]
        assert completed == JOBS
        for tenant in tenants:
            assert status["tenants"][tenant]["completed"] > 0

        counts = _settled_counts(pids, limits, deadline_s=10.0)
        for pid in pids:
            who = "server/coordinator" if pid is None else f"worker {pid}"
            assert counts[pid] <= limits[pid], (
                f"{who} climbed from {fd_baseline[pid]} to {counts[pid]} "
                f"descriptors over {JOBS - WARMUP} jobs"
            )
        rss_growth = _rss_kb() - rss_baseline
        assert rss_growth < MAX_RSS_GROWTH_KB, (
            f"RSS grew {rss_growth}kB over {JOBS - WARMUP} jobs"
        )


def test_admission_backpressure_trips_then_recovers():
    # The soak's second acceptance clause: once queued bytes cross the
    # high-water mark a submission is shed with the typed reply, and
    # after the backlog drains the same submission is admitted.
    with JobServer(
        "threaded",
        slots=1,
        admission=AdmissionConfig(max_queued_bytes=4096, retry_after_s=0.1),
    ) as server:
        admitted = []
        rejected = None
        for index in range(64):
            try:
                admitted.append(
                    server.submit("t", "wc", records=100, seed=index)
                )
            except BackpressureError as exc:
                rejected = exc
                break
        assert rejected is not None, "64 queued jobs never crossed the HWM"
        assert rejected.retry_after_s == 0.1
        assert "high-water mark" in rejected.reason
        assert len(admitted) >= 1
        for job_id in admitted:
            server.wait(job_id, timeout=120.0)
        # Recovered: queued bytes are back under the mark.
        retry = server.submit("t", "wc", records=100, seed=0)
        record = server.wait(retry, timeout=120.0)
        assert record.state == "done"
        counters = server.status()["server"]["counters"]
        assert counters["server.jobs.rejected"] == 1
        assert counters["server.jobs.completed"] == len(admitted) + 1
