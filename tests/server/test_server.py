"""Live :class:`JobServer` behaviour: concurrency, planes, backpressure.

Where ``test_kernel.py`` proves scheduling decisions on a virtual
clock, this suite proves the wiring around them: real threads, real
sockets, real engines — kept small so the whole file stays in the
tier-1 budget.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.apps.demo import demo_job_and_input, normalized_output
from repro.core.types import ExecutionMode
from repro.engine.threaded import ThreadedEngine
from repro.obs import JobObservability
from repro.server import (
    AdmissionConfig,
    BackpressureError,
    JobServer,
    ServerClient,
    SubmitRejected,
    TenantConfig,
    output_digest,
)


def serial_digest(app: str, *, records: int, seed: int = 0) -> str:
    """What a lone ThreadedEngine produces for the same submission."""
    job, pairs = demo_job_and_input(
        app,
        ExecutionMode.BARRIERLESS,
        records=records,
        num_reducers=2,
        num_maps=2,
        seed=seed,
    )
    result = ThreadedEngine(obs=JobObservability()).run(job, pairs, 2)
    return output_digest(app, result)


class TestConcurrentJobs:
    def test_three_concurrent_jobs_from_two_tenants_match_serial(self):
        # The headline acceptance criterion: one server process, >=3
        # concurrent jobs from >=2 tenants, byte-identical outputs
        # (compared through the normalised-output digest) vs serial runs.
        with JobServer(
            slots=3, tenants={"acme": 2.0, "beta": 1.0}
        ) as server:
            submissions = [
                ("acme", "wc", 150, 1),
                ("acme", "grep", 150, 2),
                ("beta", "sort", 120, 3),
            ]
            ids = [
                server.submit(tenant, app, records=records, seed=seed)
                for tenant, app, records, seed in submissions
            ]
            for job_id, (tenant, app, records, seed) in zip(
                ids, submissions
            ):
                record = server.wait(job_id, timeout=60.0)
                assert record.state == "done", record.error
                assert record.tenant == tenant
                assert record.digest == serial_digest(
                    app, records=records, seed=seed
                )
            status = server.status()
            assert status["server"]["counters"]["server.jobs.completed"] == 3
            assert status["tenants"]["acme"]["completed"] == 2
            assert status["tenants"]["beta"]["completed"] == 1

    def test_failed_job_is_recorded_not_fatal(self):
        with JobServer(slots=1) as server:
            with pytest.raises(ValueError, match="unknown app"):
                server.submit("t", "nosuchapp")
            # The server stays serviceable afterwards.
            job_id = server.submit("t", "wc", records=60)
            assert server.wait(job_id).state == "done"


class TestRpcPlane:
    def test_submit_status_cancel_list_round_trip(self):
        with JobServer(slots=2, tenants={"acme": 1.0}) as server:
            client = ServerClient(*server.address)
            job_id = client.submit("acme", "wc", records=100)
            entry = client.wait(job_id, timeout_s=60.0)
            assert entry["state"] == "done"
            assert entry["digest"] == serial_digest("wc", records=100)
            assert client.cancel(job_id) == "done"  # too late, unchanged
            listed = client.jobs("acme")
            assert [job["job_id"] for job in listed] == [job_id]
            assert client.jobs("ghost") == []
            status = client.status()
            assert status["server"]["backend"] == "threaded"
            assert "acme" in status["tenants"]

    def test_backpressure_reply_is_typed_and_recovers(self):
        # Admission trips once the queued-bytes mark is crossed; the
        # client sees reason + retry_after, and after the backlog
        # drains the same submission is accepted.
        with JobServer(
            slots=1,
            admission=AdmissionConfig(
                max_queued_bytes=1, retry_after_s=0.2
            ),
        ) as server:
            client = ServerClient(*server.address)
            with pytest.raises(SubmitRejected) as info:
                client.submit("t", "wc", records=400)
            assert info.value.retry_after_s == 0.2
            assert "high-water mark" in info.value.reason
            rejected = server.status()["server"]["counters"][
                "server.jobs.rejected"
            ]
            assert rejected == 1
            # A shed submission leaves no record behind — the record is
            # registered before the kernel queues the ticket (so a
            # grant can never race an unregistered job) and unwound on
            # rejection.
            assert server.jobs() == []

    def test_unknown_job_errors(self):
        with JobServer() as server:
            client = ServerClient(*server.address)
            with pytest.raises(KeyError):
                client.job("s-404")
            with pytest.raises(KeyError):
                client.cancel("s-404")


class TestStatusLanes:
    def test_tenant_lane_counts_in_flight_jobs_once(self):
        # The kernel snapshot already reports queued/running depths;
        # the record fold must not add them again (2 queued jobs must
        # read queued=2, not 4).
        with JobServer(slots=1) as server:
            blocker = server.submit("t", "sort", records=4000)
            victim = server.submit("t", "wc", records=60)
            deadline = time.monotonic() + 10.0
            lane = server.status()["tenants"]["t"]
            while time.monotonic() < deadline:
                if lane["running"] == 1 and lane["queued"] == 1:
                    break
                time.sleep(0.02)
                lane = server.status()["tenants"]["t"]
            assert lane["running"] == 1
            assert lane["queued"] == 1
            server.wait(blocker, timeout=60.0)
            server.wait(victim, timeout=60.0)
            lane = server.status()["tenants"]["t"]
            assert lane["queued"] == 0
            assert lane["running"] == 0
            assert lane["done"] == 2


class TestCancel:
    def test_cancel_queued_job_is_idempotent(self):
        # slots=1 and a long-running first job keep the victim queued.
        with JobServer(slots=1) as server:
            blocker = server.submit("t", "sort", records=4000)
            victim = server.submit("t", "wc", records=60)
            assert server.cancel(victim) in ("cancelled", "queued")
            state = server.cancel(victim)
            assert state == "cancelled"
            assert server.cancel(victim) == "cancelled"  # idempotent
            record = server.wait(victim, timeout=10.0)
            assert record.state == "cancelled"
            assert server.wait(blocker, timeout=60.0).state == "done"


class TestHttpShim:
    def test_submit_status_cancel_over_http(self):
        with JobServer(
            slots=1,
            admission=AdmissionConfig(max_queued_bytes=1, retry_after_s=1.0),
        ) as server:
            host, port = server.start_http()
            base = f"http://{host}:{port}"

            def post(path: str, body: dict | None = None):
                request = urllib.request.Request(
                    f"{base}{path}",
                    data=json.dumps(body or {}).encode("utf-8"),
                    method="POST",
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    return json.loads(response.read())

            # Admission control speaks HTTP 429 + Retry-After.
            with pytest.raises(urllib.error.HTTPError) as info:
                post("/submit", {"tenant": "t", "app": "wc", "records": 300})
            assert info.value.code == 429
            assert info.value.headers["Retry-After"] == "1"
            body = json.loads(info.value.read())
            assert "high-water mark" in body["error"]
            assert body["retry_after_s"] == 1.0

            # Unknown app is a 400, not a 500.
            with pytest.raises(urllib.error.HTTPError) as info:
                post("/submit", {"tenant": "t", "app": "zzz"})
            assert info.value.code == 400

            # Happy path: submit, poll, list, status.
            server._kernel.admission = AdmissionConfig()
            job_id = post("/submit", {
                "tenant": "t", "app": "wc", "records": 80,
            })["job_id"]
            server.wait(job_id, timeout=60.0)
            with urllib.request.urlopen(f"{base}/jobs/{job_id}") as response:
                entry = json.loads(response.read())
            assert entry["state"] == "done"
            with urllib.request.urlopen(f"{base}/jobs?tenant=t") as response:
                assert len(json.loads(response.read())["jobs"]) == 1
            with urllib.request.urlopen(f"{base}/status") as response:
                status = json.loads(response.read())
            assert status["server"]["backend"] == "threaded"
            assert post(f"/jobs/{job_id}/cancel")["state"] == "done"
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{base}/jobs/s-404")
            assert info.value.code == 404


class TestTenantConfigForms:
    def test_weights_dict_and_tenantconfig_both_accepted(self):
        with JobServer(
            tenants={"plain": 2.0, "rich": TenantConfig(weight=3.0)}
        ) as server:
            status = server.status()
            assert status["tenants"]["plain"]["weight"] == 2.0
            assert status["tenants"]["rich"]["weight"] == 3.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            JobServer("quantum")


def _blocking_execute(server, monkeypatch):
    """Swap _execute for a gate so a 'running' job blocks until released."""
    started = threading.Event()
    release = threading.Event()

    def fake_execute(record, resumed=False):
        started.set()
        if not release.wait(timeout=30.0):
            raise TimeoutError("test gate never released")
        raise RuntimeError("released by test")

    monkeypatch.setattr(server, "_execute", fake_execute)
    return started, release


class TestCloseAndDrain:
    def test_close_unblocks_waiters_on_running_jobs(self, monkeypatch):
        # Regression: close() used to fail only *queued* jobs, leaving a
        # caller blocked in wait() on a *running* job hanging until its
        # own timeout even though the backend was already torn down.
        server = JobServer(slots=1)
        started, release = _blocking_execute(server, monkeypatch)
        try:
            job_id = server.submit("t", "wc", records=60)
            assert started.wait(timeout=10.0)
            outcome: dict = {}

            def waiter():
                outcome["record"] = server.wait(job_id, timeout=30.0)

            thread = threading.Thread(target=waiter, daemon=True)
            thread.start()
            time.sleep(0.05)  # let the waiter block on done
            begun = time.monotonic()
            server.close()
            thread.join(timeout=5.0)
            assert not thread.is_alive(), "waiter still blocked after close"
            # Unblocked by close itself, not by the 30s wait timeout.
            assert time.monotonic() - begun < 5.0
            record = outcome["record"]
            assert record.state == "failed"
            assert "server closed" in (record.error or "")
        finally:
            release.set()
            server.close()

    def test_drain_cancels_queued_and_rejects_new(self, monkeypatch):
        server = JobServer(slots=1)
        started, release = _blocking_execute(server, monkeypatch)
        try:
            running_id = server.submit("t", "wc", records=60)
            assert started.wait(timeout=10.0)
            queued_id = server.submit("t", "wc", records=60)
            summary = server.drain(timeout_s=0.2)
            # The queued job was cancelled; the threaded backend cannot
            # checkpoint-park, so the running job simply keeps running.
            assert summary["cancelled"] == 1
            assert summary["preempt_requested"] == 0
            assert summary["still_running"] == 1
            assert server.wait(queued_id, timeout=5.0).state == "cancelled"
            assert server._record(running_id).state == "running"
            with pytest.raises(BackpressureError, match="draining"):
                server.submit("t", "wc", records=60)
            assert server.status()["server"]["draining"] is True
        finally:
            release.set()
            server.close()
