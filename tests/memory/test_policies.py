"""Tests for the LRU/FIFO cache policies."""

from __future__ import annotations

import pytest

from repro.memory.policies import FIFOCache, LRUCache


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(1000)
        cache.put("a", 1, 10)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = LRUCache(1000)
        assert cache.get("missing", "default") == "default"
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        evicted = []
        cache = LRUCache(30, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")  # refresh a: b becomes LRU
        cache.put("d", 4, 10)
        assert evicted == ["b"]
        assert "a" in cache and "c" in cache and "d" in cache

    def test_replace_updates_cost(self):
        cache = LRUCache(100)
        cache.put("a", 1, 40)
        cache.put("a", 2, 60)
        assert cache.used_bytes == 60
        assert len(cache) == 1

    def test_oversized_entry_admitted_alone(self):
        evicted = []
        cache = LRUCache(50, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("big", 2, 500)
        assert "big" in cache
        assert evicted == ["a"]

    def test_peek_does_not_touch_recency(self):
        cache = LRUCache(20)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.peek("a")
        cache.put("c", 3, 10)  # evicts a (peek didn't refresh it)
        assert "a" not in cache
        assert cache.hits == 0

    def test_remove(self):
        cache = LRUCache(100)
        cache.put("a", 1, 10)
        assert cache.remove("a")
        assert not cache.remove("a")
        assert cache.used_bytes == 0

    def test_flush_evicts_everything_in_lru_order(self):
        evicted = []
        cache = LRUCache(1000, on_evict=lambda k, v: evicted.append((k, v)))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.flush()
        assert evicted == [("a", 1), ("b", 2)]
        assert len(cache) == 0

    def test_items_lru_to_mru(self):
        cache = LRUCache(1000)
        cache.put("a", 1, 1)
        cache.put("b", 2, 1)
        cache.get("a")
        assert [k for k, _ in cache.items()] == ["b", "a"]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            LRUCache(10).put("a", 1, -1)


class TestFIFOCache:
    def test_get_does_not_refresh(self):
        evicted = []
        cache = FIFOCache(30, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")  # FIFO: does NOT protect a
        cache.put("d", 4, 10)
        assert evicted == ["a"]

    def test_hit_statistics_still_counted(self):
        cache = FIFOCache(100)
        cache.put("a", 1, 10)
        cache.get("a")
        cache.get("zz")
        assert cache.hits == 1 and cache.misses == 1
