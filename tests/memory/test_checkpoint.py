"""Tests for atomic partial-result checkpoints (repro.memory.checkpoint).

The contract: a checkpoint either reads back exactly what was written —
meta dict plus every store entry — or raises :class:`CheckpointError`.
There is no third outcome; a torn, truncated or bit-flipped snapshot must
fail closed so the engines fall back to a full refold instead of resuming
from garbage.  The suite also covers the three partial-result stores'
``checkpoint``/``restore`` round-trips, since those are the code paths a
restarted reduce attempt actually exercises.
"""

from __future__ import annotations

import os

import pytest

from repro.memory.checkpoint import (
    CHECKPOINT_FILENAME,
    CheckpointError,
    CheckpointPolicy,
    checkpoint_exists,
    checkpoint_path,
    discard_checkpoint,
    peek_checkpoint_meta,
    read_checkpoint,
    write_checkpoint,
)
from repro.memory.kvstore import SpillingKVStore
from repro.memory.spill import SpillMergeStore
from repro.memory.store import TreeMapStore


def add(a, b):
    return a + b


ENTRIES = [(f"key-{i:03d}", i * 7) for i in range(64)]
META = {"progress": {0: (3, 1, 40), 1: (2, 0, 24)}, "records": 64}


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        stats = write_checkpoint(str(tmp_path), ENTRIES, meta=META)
        assert stats.records == len(ENTRIES)
        assert stats.path == checkpoint_path(str(tmp_path))
        assert stats.bytes == os.path.getsize(stats.path)
        meta, entries = read_checkpoint(str(tmp_path))
        assert entries == ENTRIES
        assert meta["records"] == 64
        # Progress tuples survive framing with per-mapper structure intact.
        progress = {int(m): tuple(v) for m, v in meta["progress"].items()}
        assert progress == META["progress"]

    def test_empty_snapshot_round_trips(self, tmp_path):
        stats = write_checkpoint(str(tmp_path), [], meta={"records": 0})
        assert stats.records == 0
        meta, entries = read_checkpoint(str(tmp_path))
        assert entries == [] and meta == {"records": 0}

    def test_peek_returns_meta_only(self, tmp_path):
        write_checkpoint(str(tmp_path), ENTRIES, meta={"records": 64})
        assert peek_checkpoint_meta(str(tmp_path)) == {"records": 64}

    def test_exists_and_discard(self, tmp_path):
        assert not checkpoint_exists(str(tmp_path))
        write_checkpoint(str(tmp_path), ENTRIES)
        assert checkpoint_exists(str(tmp_path))
        discard_checkpoint(str(tmp_path))
        assert not checkpoint_exists(str(tmp_path))
        discard_checkpoint(str(tmp_path))  # idempotent

    def test_overwrite_replaces_previous_snapshot(self, tmp_path):
        write_checkpoint(str(tmp_path), [("old", 1)], meta={"gen": 1})
        write_checkpoint(str(tmp_path), [("new", 2)], meta={"gen": 2})
        meta, entries = read_checkpoint(str(tmp_path))
        assert entries == [("new", 2)] and meta == {"gen": 2}

    def test_no_temp_file_left_behind(self, tmp_path):
        write_checkpoint(str(tmp_path), ENTRIES)
        assert os.listdir(tmp_path) == [CHECKPOINT_FILENAME]

    def test_crash_before_rename_keeps_old_snapshot(self, tmp_path, monkeypatch):
        # Atomicity is the temp-write-then-rename: if the process dies at
        # any point before os.replace, the previous snapshot must still
        # read back intact.
        import repro.memory.checkpoint as ckpt_mod

        write_checkpoint(str(tmp_path), [("stable", 1)], meta={"gen": 1})

        def boom(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(ckpt_mod.os, "replace", boom)
        with pytest.raises(OSError):
            write_checkpoint(str(tmp_path), [("half", 9)], meta={"gen": 2})
        monkeypatch.undo()
        meta, entries = read_checkpoint(str(tmp_path))
        assert entries == [("stable", 1)] and meta == {"gen": 1}

    def test_pickle_fallback_for_untyped_values(self, tmp_path):
        # Sets are not expressible in the typed wire codec; they must
        # survive via CRC-framed pickle batches.
        entries = [("a", {1, 2, 3}), ("b", frozenset({"x"}))]
        write_checkpoint(str(tmp_path), entries)
        _meta, loaded = read_checkpoint(str(tmp_path))
        assert loaded == entries


class TestFailClosed:
    def _written(self, tmp_path) -> bytes:
        write_checkpoint(str(tmp_path), ENTRIES, meta=META)
        with open(checkpoint_path(str(tmp_path)), "rb") as fh:
            return fh.read()

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(str(tmp_path))

    def test_empty_file(self, tmp_path):
        open(checkpoint_path(str(tmp_path)), "wb").close()
        with pytest.raises(CheckpointError):
            read_checkpoint(str(tmp_path))

    def test_garbage_file(self, tmp_path):
        with open(checkpoint_path(str(tmp_path)), "wb") as fh:
            fh.write(b"\xde\xad\xbe\xef" * 64)
        with pytest.raises(CheckpointError):
            read_checkpoint(str(tmp_path))

    def test_every_truncation_point_raises(self, tmp_path):
        # Includes truncation exactly on frame boundaries: frames are
        # self-delimiting, so only the trailer's counts catch a snapshot
        # whose tail frames were cleanly chopped off.
        data = self._written(tmp_path)
        path = checkpoint_path(str(tmp_path))
        for cut in range(len(data)):
            with open(path, "wb") as fh:
                fh.write(data[:cut])
            with pytest.raises(CheckpointError):
                read_checkpoint(str(tmp_path))

    def test_bit_flips_raise(self, tmp_path):
        data = self._written(tmp_path)
        path = checkpoint_path(str(tmp_path))
        for offset in range(0, len(data), 3):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0x41
            with open(path, "wb") as fh:
                fh.write(corrupted)
            with pytest.raises(CheckpointError):
                read_checkpoint(str(tmp_path))

    def test_missing_meta_frame(self, tmp_path):
        # A wire-valid file whose first frame is not the meta record.
        from repro.core.types import Record
        from repro.dfs.wire import WireConfig, encode_frame, write_batch

        with open(checkpoint_path(str(tmp_path)), "wb") as fh:
            write_batch(fh, encode_frame([Record("k", 1)], WireConfig()))
        with pytest.raises(CheckpointError):
            read_checkpoint(str(tmp_path))

    def test_peek_validates_whole_file(self, tmp_path):
        # peek must not succeed on a snapshot whose tail is torn — the
        # engines rely on it as the go/no-go check before mutating state.
        data = self._written(tmp_path)
        with open(checkpoint_path(str(tmp_path)), "wb") as fh:
            fh.write(data[:-2])
        with pytest.raises(CheckpointError):
            peek_checkpoint_meta(str(tmp_path))


class TestPolicy:
    def test_rejects_non_positive_triggers(self):
        for kwargs in (
            {"every_records": 0},
            {"every_bytes": -1},
            {"interval_s": 0.0},
        ):
            with pytest.raises(ValueError):
                CheckpointPolicy(**kwargs)

    def test_no_triggers_is_inert(self):
        policy = CheckpointPolicy()
        assert not policy.enabled
        assert not policy.due(10**9, 10**9, 10**9)

    def test_triggers_compose_with_or(self):
        policy = CheckpointPolicy(every_records=10, interval_s=5.0)
        assert policy.enabled
        assert not policy.due(9, 0, 4.9)
        assert policy.due(10, 0, 0.0)
        assert policy.due(0, 0, 5.0)

    def test_byte_trigger(self):
        policy = CheckpointPolicy(every_bytes=1024)
        assert policy.due(0, 1024, 0.0)
        assert not policy.due(0, 1023, 0.0)


# ---------------------------------------------------------------------------
# store round-trips: the paths a restarted reduce attempt exercises
# ---------------------------------------------------------------------------

STORE_FACTORIES = {
    "treemap": lambda: TreeMapStore(),
    # Tiny thresholds so the snapshot spans spill files + buffer.
    "spillmerge": lambda: SpillMergeStore(add, spill_threshold_bytes=400),
    "kvstore": lambda: SpillingKVStore(cache_bytes=512, write_buffer_bytes=256),
}


def _fill(store) -> None:
    for i in range(80):
        store.put(f"key-{i % 23:03d}", 1)


def _drain(store) -> list:
    store.finalize()
    return list(store.items())


@pytest.mark.parametrize("kind", sorted(STORE_FACTORIES))
class TestStoreRoundTrip:
    def test_restore_matches_original(self, kind, tmp_path):
        original = STORE_FACTORIES[kind]()
        _fill(original)
        meta_in = {"records": 80}
        original.checkpoint(str(tmp_path), meta=meta_in)

        restored = STORE_FACTORIES[kind]()
        meta_out = restored.restore(str(tmp_path))
        assert meta_out == meta_in
        assert _drain(restored) == _drain(original)

    def test_checkpoint_is_non_destructive(self, kind, tmp_path):
        # The store keeps folding after a snapshot; later puts are seen.
        store = STORE_FACTORIES[kind]()
        _fill(store)
        store.checkpoint(str(tmp_path))
        store.put("zzz-late", 5)
        drained = dict(_drain(store))
        assert drained["zzz-late"] == 5

    def test_restore_refuses_corrupt_snapshot(self, kind, tmp_path):
        original = STORE_FACTORIES[kind]()
        _fill(original)
        original.checkpoint(str(tmp_path))
        path = checkpoint_path(str(tmp_path))
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            data[len(data) // 2] ^= 0xFF
            fh.seek(0)
            fh.write(data)
        fresh = STORE_FACTORIES[kind]()
        with pytest.raises(CheckpointError):
            fresh.restore(str(tmp_path))
        # Failing closed must leave the fresh store empty.
        assert _drain(fresh) == []
