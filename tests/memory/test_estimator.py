"""Tests for heap-footprint estimation."""

from __future__ import annotations

from repro.memory.estimator import (
    ENTRY_OVERHEAD_BYTES,
    MemoryTracker,
    deep_size,
    entry_size,
    shallow_size,
)


class TestDeepSize:
    def test_scalars_positive(self):
        for obj in (None, True, 3, 2.5, "abc", b"xy"):
            assert deep_size(obj) > 0

    def test_string_grows_with_length(self):
        assert deep_size("x" * 1000) > deep_size("x")

    def test_list_includes_elements(self):
        assert deep_size(["a" * 100]) > deep_size([]) + 90

    def test_dict_includes_keys_and_values(self):
        small = deep_size({})
        big = deep_size({"k" * 50: "v" * 50})
        assert big > small + 90

    def test_nested_structures(self):
        nested = [[["deep" * 10]]]
        assert deep_size(nested) > deep_size("deep" * 10)

    def test_deep_nesting_bounded(self):
        # Pathological nesting must terminate (depth cap).
        obj: list = []
        current = obj
        for _ in range(50):
            inner: list = []
            current.append(inner)
            current = inner
        assert deep_size(obj) > 0

    def test_frozenset(self):
        assert deep_size(frozenset({"user1", "user2"})) > deep_size(frozenset())


class TestEntrySize:
    def test_includes_overhead(self):
        assert entry_size("k", 1) >= ENTRY_OVERHEAD_BYTES

    def test_monotone_in_value_size(self):
        assert entry_size("k", "v" * 1000) > entry_size("k", "v")


class TestMemoryTracker:
    def test_charge_discharge(self):
        tracker = MemoryTracker()
        tracker.charge(100)
        tracker.charge(50)
        assert tracker.used == 150
        tracker.discharge(60)
        assert tracker.used == 90

    def test_peak_is_high_water_mark(self):
        tracker = MemoryTracker()
        tracker.charge(200)
        tracker.discharge(150)
        tracker.charge(10)
        assert tracker.peak == 200
        assert tracker.used == 60

    def test_discharge_floors_at_zero(self):
        tracker = MemoryTracker()
        tracker.charge(10)
        tracker.discharge(100)
        assert tracker.used == 0

    def test_reset_preserves_peak(self):
        tracker = MemoryTracker()
        tracker.charge(500)
        tracker.reset()
        assert tracker.used == 0
        assert tracker.peak == 500

    def test_shallow_size_fallback(self):
        assert shallow_size(object()) > 0
