"""Tests for the disk-spilling key/value store (§5.2, BerkeleyDB stand-in)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.kvstore import SpillingKVStore


class TestBasics:
    def test_put_get_roundtrip(self):
        store = SpillingKVStore()
        store.put("a", [1, 2, 3])
        assert store.get("a") == [1, 2, 3]
        store.close()

    def test_get_missing_returns_default(self):
        store = SpillingKVStore()
        assert store.get("nope") is None
        assert store.get("nope", 42) == 42
        store.close()

    def test_contains(self):
        store = SpillingKVStore()
        store.put("x", 1)
        assert store.contains("x")
        assert not store.contains("y")
        store.close()

    def test_overwrite(self):
        store = SpillingKVStore()
        store.put("a", 1)
        store.put("a", 2)
        assert store.get("a") == 2
        store.close()

    def test_items_sorted(self):
        store = SpillingKVStore()
        for key in ("c", "a", "b"):
            store.put(key, key)
        assert [k for k, _ in store.items()] == ["a", "b", "c"]
        store.close()


class TestSpilling:
    def test_eviction_to_disk_preserves_values(self):
        # Tiny cache: almost everything must round-trip through the log.
        store = SpillingKVStore(cache_bytes=512, write_buffer_bytes=256)
        for i in range(100):
            store.put(f"key-{i:03d}", f"value-{i}" * 5)
        for i in range(100):
            assert store.get(f"key-{i:03d}") == f"value-{i}" * 5
        assert store.disk_writes > 0
        assert store.disk_reads > 0
        store.close()

    def test_memory_stays_bounded(self):
        store = SpillingKVStore(cache_bytes=2048, write_buffer_bytes=512)
        for i in range(200):
            store.put(f"key-{i:04d}", "v" * 50)
        # Cache + write buffer: bounded regardless of entry count, modulo
        # one oversized in-flight entry.
        assert store.memory_used() < 2048 + 512 + 512
        store.close()

    def test_read_modify_update_cycle(self):
        # The exact §5.2 access pattern, with a cache too small to hold
        # the working set.
        store = SpillingKVStore(cache_bytes=600, write_buffer_bytes=200)
        keys = [f"counter-{i:02d}" for i in range(30)]
        for _round in range(5):
            for key in keys:
                store.put(key, store.get(key, 0) + 1)
        for key in keys:
            assert store.get(key) == 5, key
        store.close()

    def test_stats_exposed(self):
        store = SpillingKVStore(cache_bytes=512)
        for i in range(50):
            store.put(f"k{i}", i)
        _ = store.get("k0")
        stats = store.stats()
        assert stats["puts"] == 50
        assert stats["gets"] == 1
        assert stats["cache_hits"] + stats["cache_misses"] == 1
        assert stats["evictions"] > 0
        store.close()

    def test_finalize_flushes_everything_to_log(self):
        store = SpillingKVStore(cache_bytes=1 << 20)
        for i in range(10):
            store.put(f"key-{i}", i)
        assert store.disk_writes == 0  # all cached, nothing flushed yet
        store.finalize()
        assert store.disk_writes == 10
        assert dict(store.items()) == {f"key-{i}": i for i in range(10)}
        store.close()

    def test_len_counts_all_keys(self):
        store = SpillingKVStore(cache_bytes=512, write_buffer_bytes=128)
        for i in range(40):
            store.put(f"key-{i:02d}", "x" * 40)
        assert len(store) == 40
        store.close()

    def test_persistent_dir(self, tmp_path):
        store = SpillingKVStore(cache_bytes=256, dir_path=str(tmp_path))
        for i in range(20):
            store.put(f"k{i:02d}", i)
        store.finalize()
        assert (tmp_path / "data.log").stat().st_size > 0
        store.close()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 25), st.integers(-50, 50)),
        max_size=150,
    ),
    st.integers(min_value=256, max_value=4096),
)
def test_property_kvstore_folding_matches_dict(pairs, cache_bytes):
    """Read-modify-update through the KV store equals a plain dict fold,
    for any cache size (i.e. spilling never loses or corrupts partials)."""
    store = SpillingKVStore(cache_bytes=cache_bytes, write_buffer_bytes=256)
    model: dict[int, int] = {}
    for key, value in pairs:
        store.put(key, store.get(key, 0) + value)
        model[key] = model.get(key, 0) + value
    assert dict(store.items()) == model
    store.close()


class TestCompaction:
    def test_reclaims_dead_versions(self):
        store = SpillingKVStore(cache_bytes=256, write_buffer_bytes=128)
        for _round in range(10):
            for key in range(20):
                store.put(key, f"value-{_round}-{key}" * 3)
        store.finalize()
        before = store.log_size_bytes()
        reclaimed = store.compact()
        after = store.log_size_bytes()
        assert reclaimed > 0
        assert after < before
        assert before - after == reclaimed
        assert store.compactions == 1
        store.close()

    def test_values_survive_compaction(self):
        store = SpillingKVStore(cache_bytes=256, write_buffer_bytes=128)
        for key in range(30):
            store.put(key, key)
        for key in range(30):
            store.put(key, key * 10)  # dead first versions
        store.compact()
        for key in range(30):
            assert store.get(key) == key * 10, key
        assert len(store) == 30
        store.close()

    def test_compacting_fresh_store_is_noop(self):
        store = SpillingKVStore()
        assert store.compact() == 0
        store.close()

    def test_read_modify_update_after_compaction(self):
        store = SpillingKVStore(cache_bytes=512, write_buffer_bytes=128)
        for key in range(25):
            store.put(key, 1)
        store.compact()
        for key in range(25):
            store.put(key, store.get(key, 0) + 1)
        assert all(store.get(key) == 2 for key in range(25))
        store.close()


class TestWireFormatIntegrity:
    """The append log is CRC-framed: corrupt entries fail loudly instead
    of handing a decoded-garbage value back to the reducer."""

    def _evicted(self, tmp_path):
        store = SpillingKVStore(
            cache_bytes=256, write_buffer_bytes=64, dir_path=str(tmp_path)
        )
        for i in range(40):
            store.put(f"key-{i:03d}", [i, i * 2])
        store.finalize()
        return store

    def test_bit_flip_in_log_raises(self, tmp_path):
        from repro.dfs.serialization import SerializationError

        store = self._evicted(tmp_path)
        offset, length = store._index["key-000"]
        with open(store._log_path, "r+b") as fh:
            fh.seek(offset + length // 2)
            byte = fh.read(1)
            fh.seek(offset + length // 2)
            fh.write(bytes([byte[0] ^ 0x20]))
        with pytest.raises(SerializationError):
            store.get("key-000")
        store.close()

    def test_truncated_log_raises(self, tmp_path):
        import os

        from repro.dfs.serialization import SerializationError

        store = self._evicted(tmp_path)
        last_key = max(store._index, key=lambda k: store._index[k][0])
        with open(store._log_path, "r+b") as fh:
            fh.truncate(os.path.getsize(store._log_path) - 2)
        # Read the log location directly: get() may still serve the most
        # recently written keys from the LRU cache.
        with pytest.raises(SerializationError):
            store._read_log(store._index[last_key])
        store.close()
