"""Tests for the in-memory TreeMapStore, including the OOM fault model."""

from __future__ import annotations

import pytest

from repro.core.partial import PartialResultStore
from repro.core.types import ReducerOutOfMemoryError
from repro.memory.store import TreeMapStore


class TestProtocol:
    def test_satisfies_partial_result_store(self):
        assert isinstance(TreeMapStore(), PartialResultStore)

    def test_get_put_contains(self):
        store = TreeMapStore()
        assert not store.contains("a")
        assert store.get("a") is None
        assert store.get("a", 0) == 0
        store.put("a", 5)
        assert store.contains("a")
        assert store.get("a") == 5
        assert len(store) == 1

    def test_items_sorted(self):
        store = TreeMapStore()
        for key in ("c", "a", "b"):
            store.put(key, key.upper())
        assert list(store.items()) == [("a", "A"), ("b", "B"), ("c", "C")]

    def test_finalize_is_noop(self):
        store = TreeMapStore()
        store.put("a", 1)
        store.finalize()
        assert list(store.items()) == [("a", 1)]


class TestMemoryAccounting:
    def test_memory_grows_with_entries(self):
        store = TreeMapStore()
        store.put("a", 1)
        first = store.memory_used()
        store.put("b", 2)
        assert store.memory_used() > first

    def test_replace_adjusts_not_accumulates(self):
        store = TreeMapStore()
        store.put("a", "x" * 1000)
        big = store.memory_used()
        store.put("a", "x")
        assert store.memory_used() < big

    def test_remove_releases(self):
        store = TreeMapStore()
        store.put("a", "payload" * 100)
        store.remove("a")
        assert store.memory_used() == 0
        assert not store.remove("a")

    def test_pop_first_releases_and_orders(self):
        store = TreeMapStore()
        store.put("b", 2)
        store.put("a", 1)
        assert store.pop_first() == ("a", 1)
        assert len(store) == 1

    def test_peak_memory(self):
        store = TreeMapStore()
        store.put("a", "y" * 500)
        peak = store.peak_memory
        store.remove("a")
        assert store.peak_memory == peak
        assert store.memory_used() == 0

    def test_sample_hook_called(self):
        samples = []
        store = TreeMapStore(on_sample=samples.append)
        store.put("a", 1)
        store.put("b", 2)
        store.remove("a")
        assert len(samples) == 3
        assert samples[1] > samples[0]


class TestOOM:
    def test_raises_at_heap_limit(self):
        store = TreeMapStore(heap_limit_bytes=600)
        with pytest.raises(ReducerOutOfMemoryError) as excinfo:
            for i in range(100):
                store.put(f"key-{i}", "v" * 50)
        assert excinfo.value.used_bytes > excinfo.value.limit_bytes

    def test_no_limit_never_raises(self):
        store = TreeMapStore(heap_limit_bytes=None)
        for i in range(200):
            store.put(f"key-{i}", "v" * 50)
        assert len(store) == 200
