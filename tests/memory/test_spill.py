"""Tests for the disk spill-and-merge store (§5.1)."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.spill import SpillMergeStore
from repro.memory.store import TreeMapStore
from tests.fdutil import open_fd_count


def add(a, b):
    return a + b


class TestBasics:
    def test_small_data_never_spills(self):
        store = SpillMergeStore(add, spill_threshold_bytes=1 << 20)
        store.put("a", 1)
        store.put("b", 2)
        assert store.num_spill_files == 0
        store.finalize()
        assert list(store.items()) == [("a", 1), ("b", 2)]
        store.close()

    def test_spill_triggers_at_threshold(self):
        store = SpillMergeStore(add, spill_threshold_bytes=400)
        for i in range(50):
            store.put(f"key-{i:03d}", 1)
        assert store.num_spill_files > 0
        assert store.memory_used() < 400
        store.close()

    def test_put_after_finalize_raises(self):
        store = SpillMergeStore(add, spill_threshold_bytes=1 << 20)
        store.finalize()
        with pytest.raises(RuntimeError):
            store.put("a", 1)
        store.close()

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SpillMergeStore(add, spill_threshold_bytes=0)

    def test_items_before_finalize_shows_buffer_only(self):
        store = SpillMergeStore(add, spill_threshold_bytes=1 << 20)
        store.put("z", 1)
        assert list(store.items()) == [("z", 1)]
        store.close()

    def test_get_sees_only_buffered_partials(self):
        # After a spill, get() starts fresh — the merge reconciles pieces.
        store = SpillMergeStore(add, spill_threshold_bytes=300)
        store.put("k", 10)
        for i in range(40):
            store.put(f"filler-{i:02d}", 1)  # force a spill
        assert store.num_spill_files >= 1
        assert store.get("k") is None  # spilled away
        store.put("k", 5)
        store.finalize()
        merged = dict(store.items())
        assert merged["k"] == 15  # 10 (spilled) + 5 (buffered)
        store.close()


class TestMergePhase:
    def test_merges_across_spill_files(self):
        store = SpillMergeStore(add, spill_threshold_bytes=350)
        for _round in range(5):
            for key in ("alpha", "beta", "gamma"):
                store.put(key, 1)
            for i in range(20):
                store.put(f"pad-{_round}-{i}", 1)
        assert store.num_spill_files >= 2
        store.finalize()
        merged = dict(store.items())
        assert merged["alpha"] == 5
        assert merged["beta"] == 5
        assert merged["gamma"] == 5
        store.close()

    def test_merged_output_is_key_sorted(self):
        store = SpillMergeStore(add, spill_threshold_bytes=300)
        for i in (9, 3, 7, 1, 5, 0, 8, 2, 6, 4) * 10:
            store.put(f"k{i}", 1)
        store.finalize()
        keys = [k for k, _ in store.items()]
        assert keys == sorted(keys)
        store.close()

    def test_spill_files_created_on_disk(self, tmp_path):
        store = SpillMergeStore(
            add, spill_threshold_bytes=300, spill_dir=str(tmp_path)
        )
        for i in range(60):
            store.put(f"key-{i:03d}", 1)
        files = [f for f in os.listdir(tmp_path) if f.startswith("spill-")]
        assert len(files) == store.num_spill_files > 0
        store.close()
        assert not [f for f in os.listdir(tmp_path) if f.startswith("spill-")]

    def test_len_counts_buffer_plus_spilled(self):
        store = SpillMergeStore(add, spill_threshold_bytes=300)
        for i in range(30):
            store.put(f"key-{i:03d}", 1)
        assert len(store) == 30  # upper bound; all keys distinct here
        store.close()


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(-100, 100)),
        max_size=200,
    ),
    st.integers(min_value=200, max_value=5000),
)
def test_property_spillmerge_equals_inmemory(pairs, threshold):
    """The paper's correctness requirement: spilling must be transparent.

    Folding through a SpillMergeStore with any threshold must produce the
    same final (key, aggregate) mapping as the in-memory store.
    """
    spill = SpillMergeStore(add, spill_threshold_bytes=threshold)
    inmem = TreeMapStore()
    for key, value in pairs:
        for store in (spill, inmem):
            store.put(key, store.get(key, 0) + value)
    spill.finalize()
    inmem.finalize()
    assert list(spill.items()) == list(inmem.items())
    spill.close()


class TestReplacementDuringSpill:
    def test_stale_partial_not_double_counted(self):
        """Regression: a spill triggered by a *replacement* put must not
        write the superseded partial to the spill file — merging the old
        and new versions would double-count everything the old partial
        had already folded in."""
        store = SpillMergeStore(add, spill_threshold_bytes=10_000)
        # Grow one key's partial until its replacement put crosses the
        # threshold by itself.
        store.put("big", 0)
        total = 0
        for i in range(1, 300):
            current = store.get("big", 0)
            store.put("big", current + i)
            total += i
            if store.num_spill_files > 0:
                break
        # Force at least one spill via the big key even if not yet.
        big_value = store.get("big", 0)
        store.put("filler", "x" * 20_000)  # guarantees a spill afterwards
        store.put("big", store.get("big", 0) + 1_000_000)
        store.finalize()
        merged = dict(store.items())
        # The final value must be exactly the sum of all increments.
        assert merged["big"] == total + 1_000_000
        store.close()

    def test_fold_correct_under_tiny_threshold(self):
        # Every put spills: the stress case for replacement handling.
        store = SpillMergeStore(add, spill_threshold_bytes=1)
        for _round in range(10):
            for key in ("a", "b"):
                store.put(key, store.get(key, 0) + 1)
        store.finalize()
        assert dict(store.items()) == {"a": 10, "b": 10}
        store.close()


class TestWireFormatIntegrity:
    """Spill files are CRC-framed wire batches: defects fail loudly."""

    def _spilled(self, tmp_path):
        store = SpillMergeStore(
            add, spill_threshold_bytes=300, spill_dir=str(tmp_path)
        )
        for i in range(60):
            store.put(f"key-{i:03d}", i)
        assert store.num_spill_files >= 1
        return store

    def test_bit_flip_in_spill_file_raises(self, tmp_path):
        from repro.dfs.serialization import SerializationError

        store = self._spilled(tmp_path)
        path = store._spill_paths[0]
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            data[len(data) // 2] ^= 0x10
            fh.seek(0)
            fh.write(data)
        store.finalize()
        with pytest.raises(SerializationError):
            dict(store.items())
        store.close()

    def test_truncated_spill_file_raises(self, tmp_path):
        from repro.dfs.serialization import SerializationError

        store = self._spilled(tmp_path)
        path = store._spill_paths[0]
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)
        store.finalize()
        with pytest.raises(SerializationError):
            dict(store.items())
        store.close()


class TestNoLeakedDescriptors:
    """The k-way merge must release every spill-file descriptor, even
    when the consumer abandons the stream mid-merge."""

    @staticmethod
    def _open_fds() -> int:
        return open_fd_count()

    def _spilled_store(self):
        store = SpillMergeStore(add, spill_threshold_bytes=300)
        for i in range(120):
            store.put(f"key-{i:03d}", 1)
        assert store.num_spill_files >= 2
        return store

    def test_full_merge_releases_descriptors(self):
        store = self._spilled_store()
        store.finalize()
        before = self._open_fds()
        dict(store.items())
        assert self._open_fds() == before
        store.close()

    def test_abandoned_merge_releases_descriptors(self):
        store = self._spilled_store()
        store.finalize()
        before = self._open_fds()
        stream = store.items()
        next(stream)  # readers now hold their descriptors
        stream.close()  # consumer walks away mid-merge
        assert self._open_fds() == before
        store.close()

    def test_exception_mid_merge_releases_descriptors(self):
        store = self._spilled_store()
        store.finalize()
        before = self._open_fds()
        with pytest.raises(RuntimeError):
            for index, _entry in enumerate(store.items()):
                if index == 3:
                    raise RuntimeError("consumer died")
        assert self._open_fds() == before
        store.close()
