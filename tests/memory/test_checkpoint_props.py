"""Property-based fuzzing of the checkpoint codec and store round-trips.

Two invariants, explored over randomized inputs (run in CI with
``--hypothesis-profile=ci`` for determinism):

1. **Round-trip identity** — for every partial-result store
   implementation, ``checkpoint`` then ``restore`` into a fresh store
   yields a value-identical finalized view, whatever sequence of ``put``
   calls produced the original (duplicate keys, unicode keys, negative
   values, enough volume to force spills and cache evictions).
2. **Fail closed** — a snapshot with any single byte flipped, or
   truncated at any length (frame boundaries included), raises
   :class:`CheckpointError`; there is no input that decodes to a
   *different* valid snapshot.
"""

from __future__ import annotations

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.checkpoint import (
    CheckpointError,
    checkpoint_path,
    read_checkpoint,
    write_checkpoint,
)
from repro.memory.kvstore import SpillingKVStore
from repro.memory.spill import SpillMergeStore
from repro.memory.store import TreeMapStore


def add(a, b):
    return a + b


STORE_FACTORIES = {
    "treemap": lambda: TreeMapStore(),
    # Tiny limits so random streams regularly cross the spill/evict paths.
    "spillmerge": lambda: SpillMergeStore(add, spill_threshold_bytes=300),
    "kvstore": lambda: SpillingKVStore(cache_bytes=256, write_buffer_bytes=128),
}

_keys = st.text(min_size=1, max_size=8)
_values = st.integers(min_value=-(2**40), max_value=2**40)
_streams = st.lists(st.tuples(_keys, _values), max_size=80)


def _drain(store) -> list:
    store.finalize()
    return list(store.items())


@pytest.mark.parametrize("kind", sorted(STORE_FACTORIES))
@settings(max_examples=25, deadline=None)
@given(stream=_streams)
def test_checkpoint_restore_round_trip(kind, stream):
    original = STORE_FACTORIES[kind]()
    for key, value in stream:
        original.put(key, value)
    with tempfile.TemporaryDirectory() as directory:
        original.checkpoint(directory, meta={"records": len(stream)})
        restored = STORE_FACTORIES[kind]()
        meta = restored.restore(directory)
        assert meta == {"records": len(stream)}
        assert _drain(restored) == _drain(original)


@settings(max_examples=60, deadline=None)
@given(stream=_streams, data=st.data())
def test_single_byte_corruption_raises(stream, data):
    with tempfile.TemporaryDirectory() as directory:
        write_checkpoint(directory, stream, meta={"records": len(stream)})
        path = checkpoint_path(directory)
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        offset = data.draw(st.integers(0, len(blob) - 1), label="offset")
        flip = data.draw(st.integers(1, 255), label="xor")
        blob[offset] ^= flip
        with open(path, "wb") as fh:
            fh.write(blob)
        with pytest.raises(CheckpointError):
            read_checkpoint(directory)


@settings(max_examples=60, deadline=None)
@given(stream=_streams, data=st.data())
def test_any_truncation_raises(stream, data):
    with tempfile.TemporaryDirectory() as directory:
        write_checkpoint(directory, stream, meta={"records": len(stream)})
        path = checkpoint_path(directory)
        with open(path, "rb") as fh:
            blob = fh.read()
        cut = data.draw(st.integers(0, len(blob) - 1), label="cut")
        with open(path, "wb") as fh:
            fh.write(blob[:cut])
        with pytest.raises(CheckpointError):
            read_checkpoint(directory)
