"""Unit and property tests for the red-black TreeMap."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.memory.treemap import TreeMap


class TestBasics:
    def test_empty(self):
        tree = TreeMap()
        assert len(tree) == 0
        assert not tree
        assert "x" not in tree
        assert tree.get("x") is None
        assert tree.get("x", 7) == 7

    def test_put_get(self):
        tree = TreeMap()
        tree.put("a", 1)
        assert tree["a"] == 1
        assert "a" in tree
        assert len(tree) == 1

    def test_put_replaces(self):
        tree = TreeMap()
        tree.put("a", 1)
        tree.put("a", 2)
        assert tree["a"] == 2
        assert len(tree) == 1

    def test_setitem_delitem(self):
        tree = TreeMap()
        tree["k"] = 5
        assert tree["k"] == 5
        del tree["k"]
        assert "k" not in tree
        with pytest.raises(KeyError):
            del tree["k"]

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            TreeMap()["missing"]

    def test_setdefault(self):
        tree = TreeMap()
        assert tree.setdefault("a", 1) == 1
        assert tree.setdefault("a", 9) == 1

    def test_remove(self):
        tree = TreeMap()
        tree.put("a", 1)
        assert tree.remove("a")
        assert not tree.remove("a")
        assert len(tree) == 0

    def test_clear(self):
        tree = TreeMap()
        for i in range(10):
            tree.put(i, i)
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []


class TestOrderedAccess:
    def _tree(self):
        tree = TreeMap()
        for key in (5, 1, 9, 3, 7):
            tree.put(key, key * 10)
        return tree

    def test_items_sorted(self):
        assert list(self._tree().keys()) == [1, 3, 5, 7, 9]

    def test_values_in_key_order(self):
        assert list(self._tree().values()) == [10, 30, 50, 70, 90]

    def test_iter_is_keys(self):
        assert list(iter(self._tree())) == [1, 3, 5, 7, 9]

    def test_first_last(self):
        tree = self._tree()
        assert tree.first_key() == 1
        assert tree.last_key() == 9

    def test_first_last_empty_raise(self):
        with pytest.raises(KeyError):
            TreeMap().first_key()
        with pytest.raises(KeyError):
            TreeMap().last_key()

    def test_pop_first_drains_in_order(self):
        tree = self._tree()
        popped = [tree.pop_first() for _ in range(len(tree))]
        assert popped == [(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]
        with pytest.raises(KeyError):
            tree.pop_first()

    def test_floor_ceiling(self):
        tree = self._tree()
        assert tree.floor_key(6) == 5
        assert tree.floor_key(5) == 5
        assert tree.floor_key(0) is None
        assert tree.ceiling_key(6) == 7
        assert tree.ceiling_key(9) == 9
        assert tree.ceiling_key(10) is None

    def test_range_items(self):
        tree = self._tree()
        assert list(tree.range_items(3, 7)) == [(3, 30), (5, 50), (7, 70)]
        assert list(tree.range_items(10, 20)) == []


class TestInvariantsUnit:
    def test_sequential_inserts_stay_balanced(self):
        tree = TreeMap()
        for i in range(500):  # sorted insertion is the classic worst case
            tree.put(i, i)
            if i % 50 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert list(tree.keys()) == list(range(500))

    def test_reverse_inserts(self):
        tree = TreeMap()
        for i in reversed(range(300)):
            tree.put(i, i)
        tree.check_invariants()

    def test_delete_half(self):
        tree = TreeMap()
        for i in range(200):
            tree.put(i, i)
        for i in range(0, 200, 2):
            assert tree.remove(i)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1, 200, 2))


@given(st.lists(st.tuples(st.integers(-1000, 1000), st.integers()), max_size=200))
def test_property_matches_dict(pairs):
    tree = TreeMap()
    model: dict[int, int] = {}
    for key, value in pairs:
        tree.put(key, value)
        model[key] = value
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    tree.check_invariants()


@given(
    st.lists(st.integers(0, 50), max_size=100),
    st.lists(st.integers(0, 50), max_size=100),
)
def test_property_insert_then_delete(inserts, deletes):
    tree = TreeMap()
    model: dict[int, int] = {}
    for key in inserts:
        tree.put(key, key)
        model[key] = key
    for key in deletes:
        assert tree.remove(key) == (key in model)
        model.pop(key, None)
    assert list(tree.items()) == sorted(model.items())
    tree.check_invariants()


class TreeMapMachine(RuleBasedStateMachine):
    """Stateful test: TreeMap behaves exactly like a sorted dict."""

    def __init__(self):
        super().__init__()
        self.tree = TreeMap()
        self.model: dict[int, int] = {}

    @rule(key=st.integers(0, 30), value=st.integers())
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 30))
    def remove(self, key):
        assert self.tree.remove(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=st.integers(0, 30))
    def get(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule()
    def pop_first(self):
        if self.model:
            expected = min(self.model)
            key, value = self.tree.pop_first()
            assert key == expected and value == self.model.pop(expected)

    @invariant()
    def agrees_with_model(self):
        assert len(self.tree) == len(self.model)
        assert list(self.tree.items()) == sorted(self.model.items())

    @invariant()
    def red_black_invariants_hold(self):
        self.tree.check_invariants()


TestTreeMapStateful = TreeMapMachine.TestCase
TestTreeMapStateful.settings = settings(max_examples=30, stateful_step_count=40)
