"""Portable open-file-descriptor counting for leak assertions.

Tests that assert "N jobs later, no descriptors leaked" need a current
FD count — for this process or for a child (cluster workers).
``/proc/<pid>/fd`` only exists on Linux; this helper falls back to
psutil (if the optional dependency is installed) and then, for the
calling process only, to ``/dev/fd`` (BSD/macOS).  On platforms with no
counting mechanism at all it cleanly skips the calling test — a missing
``/proc`` must read as "cannot measure here", not as a leak or a crash.
"""

from __future__ import annotations

import os

import pytest

__all__ = ["open_fd_count"]


def open_fd_count(pid: int | None = None) -> int:
    """Open file descriptors held by ``pid`` (default: this process)."""
    fd_dir = f"/proc/{pid}/fd" if pid is not None else "/proc/self/fd"
    try:
        return len(os.listdir(fd_dir))
    except OSError:
        pass
    try:
        import psutil
    except ImportError:
        pass
    else:
        try:
            return int(psutil.Process(pid).num_fds())
        except Exception:  # noqa: BLE001 - process gone or unsupported
            pass
    if pid is None:
        try:
            return len(os.listdir("/dev/fd"))
        except OSError:
            pass
    pytest.skip("no mechanism to count open file descriptors here")
