"""Chaos suite: random configuration × fault matrix against the oracle.

Hypothesis drives random combinations of engine, execution mode, memory
technique, task parallelism and injected failures over random inputs; the
output must always equal the deterministic reference computation.  This is
the repository-wide integration property: no combination of supported
configuration knobs may change an answer.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps import lastfm, sortapp, wordcount
from repro.core.job import MemoryConfig
from repro.core.types import ExecutionMode
from repro.engine.faults import FaultInjector, TaskPermanentlyFailedError
from repro.engine.recovery import (
    BackoffPolicy,
    FetchFaultInjector,
    RecoveryConfig,
)
from repro.engine.local import LocalEngine
from repro.engine.threaded import ThreadedEngine
from repro.workloads.listens import generate_listens, unique_listens_reference
from repro.workloads.text import generate_documents

memory_configs = st.sampled_from(
    [
        MemoryConfig(store="inmemory"),
        MemoryConfig(store="spillmerge", spill_threshold_bytes=1024),
        MemoryConfig(store="spillmerge", spill_threshold_bytes=16384),
        MemoryConfig(store="kvstore", kv_cache_bytes=1024),
    ]
)

engines = st.sampled_from(["local", "threaded"])


def _engine(kind: str, failure_seed: int | None):
    injector = (
        FaultInjector(failure_probability=0.15, seed=failure_seed)
        if failure_seed is not None
        else None
    )
    if kind == "local":
        return LocalEngine(fault_injector=injector)
    return ThreadedEngine(map_slots=2, fault_injector=injector)


@settings(max_examples=20, deadline=None)
@given(
    engine_kind=engines,
    mode=st.sampled_from(list(ExecutionMode)),
    memory=memory_configs,
    num_maps=st.integers(1, 6),
    num_reducers=st.integers(1, 4),
    corpus_seed=st.integers(0, 50),
    failure_seed=st.one_of(st.none(), st.integers(0, 50)),
)
def test_chaos_wordcount(
    engine_kind, mode, memory, num_maps, num_reducers, corpus_seed, failure_seed
):
    corpus = generate_documents(12, words_per_doc=20, vocab_size=40, seed=corpus_seed)
    job = wordcount.make_job(mode, num_reducers=num_reducers, memory=memory)
    engine = _engine(engine_kind, failure_seed)
    try:
        result = engine.run(job, corpus, num_maps=num_maps)
    except TaskPermanentlyFailedError:
        # An unlucky seed can legitimately fail one task max_attempts
        # times in a row (p = 0.15**4 per task); the oracle property is
        # vacuous when the modeled retry budget is genuinely exhausted.
        assume(False)
    assert result.output_as_dict() == wordcount.reference_output(corpus)


@settings(max_examples=15, deadline=None)
@given(
    mode=st.sampled_from(list(ExecutionMode)),
    memory=memory_configs,
    num_maps=st.integers(1, 5),
    num_reducers=st.integers(1, 4),
    seed=st.integers(0, 50),
)
def test_chaos_lastfm(mode, memory, num_maps, num_reducers, seed):
    listens = generate_listens(200, num_users=8, num_tracks=25, seed=seed)
    job = lastfm.make_job(mode, num_reducers=num_reducers, memory=memory)
    result = LocalEngine().run(job, listens, num_maps=num_maps)
    assert result.output_as_dict() == unique_listens_reference(listens)


@settings(max_examples=15, deadline=None)
@given(
    mode=st.sampled_from(list(ExecutionMode)),
    num_maps=st.integers(1, 5),
    num_reducers=st.integers(1, 5),
    keys=st.lists(st.integers(0, 999_999), max_size=60),
    failure_seed=st.one_of(st.none(), st.integers(0, 50)),
)
def test_chaos_sort(mode, num_maps, num_reducers, keys, failure_seed):
    records = [(k, k) for k in keys]
    job = sortapp.make_job(mode, num_reducers=num_reducers)
    engine = _engine("local", failure_seed)
    try:
        result = engine.run(job, records, num_maps=num_maps)
    except TaskPermanentlyFailedError:
        # See test_chaos_wordcount: a legitimately exhausted retry
        # budget is modeled behavior, not a wrong answer.
        assume(False)
    assert [(r.key, r.value) for r in result.all_output()] == (
        sortapp.reference_output(records)
    )


@settings(max_examples=15, deadline=None)
@given(
    mode=st.sampled_from(list(ExecutionMode)),
    memory=memory_configs,
    num_maps=st.integers(1, 5),
    num_reducers=st.integers(1, 4),
    corpus_seed=st.integers(0, 50),
    fetch_seed=st.integers(0, 50),
    fetch_p=st.sampled_from([0.0, 0.1, 0.3]),
    drop_p=st.sampled_from([0.0, 0.1]),
    crash_reducer=st.booleans(),
)
def test_chaos_shuffle_faults_wordcount(
    mode, memory, num_maps, num_reducers, corpus_seed, fetch_seed,
    fetch_p, drop_p, crash_reducer,
):
    """Random shuffle-level faults never change the answer.

    The shuffle-recovery counterpart of the task-crash chaos property:
    probabilistic fetch failures and in-flight drops plus an optional
    reducer crash, driven through the threaded engine's epoch-tagged
    fetch protocol, must leave the output equal to the oracle.
    """
    corpus = generate_documents(12, words_per_doc=20, vocab_size=40, seed=corpus_seed)
    job = wordcount.make_job(mode, num_reducers=num_reducers, memory=memory)
    injector = FetchFaultInjector(
        fetch_failure_probability=fetch_p,
        drop_probability=drop_p,
        crash_reducer_after={0: 5} if crash_reducer else {},
        seed=fetch_seed,
    )
    engine = ThreadedEngine(
        map_slots=2,
        fetch_injector=injector,
        recovery=RecoveryConfig(backoff=BackoffPolicy(base_s=0.0005, cap_s=0.005)),
    )
    result = engine.run(job, corpus, num_maps=num_maps)
    assert result.output_as_dict() == wordcount.reference_output(corpus)
